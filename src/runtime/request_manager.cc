#include "runtime/request_manager.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "model/serialization.h"
#include "obs/obs.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/threadpool.h"

namespace specinfer {
namespace runtime {

namespace {

// Serving-snapshot framing (version 1). The snapshot is the bulky
// half of crash safety: full sessions (KV caches included) plus
// scheduler bookkeeping; the journal holds only per-event records.
constexpr char kSnapMagic[4] = {'S', 'P', 'S', 'N'};
// v2: resident shared-block intern table + per-request shared
// holdings (prefix sharing).
// v4: SSM precision byte, so recovery replays the journal under the
// same draft-model numerics the crashed process ran.
// v5: QoS — per-request priority class + wall-clock deadline,
// per-class ingress bucket state, overload/shed-by-class stats.
// v6: resumable iterations — open-iteration flag + journaled clock
// reading + replayed degradation evidence, and a per-active
// stepped-this-iteration mark, so a snapshot taken right after a
// mid-iteration recovery carries the resume state.
// v7: tensor-parallel degree byte, so recovery replays the journal
// under the same sharded execution shape the crashed process ran
// (logits are bit-identical across TP degrees, but recovery is
// defined as reproducing the crashed process exactly).
constexpr uint32_t kSnapVersion = 7;

using model::io::readPod;
using model::io::readPodVector;
using model::io::writePod;
using model::io::writePodVector;

void
writeRequest(std::ostream &out, const Request &req)
{
    writePod<uint64_t>(out, req.id);
    writePodVector<int>(out, req.prompt);
    writePod<uint64_t>(out, req.arrivalIteration);
    writePod<uint64_t>(out, req.maxNewTokens);
    writePod<uint64_t>(out, req.deadlineIterations);
    writePod<uint64_t>(out, req.deadlineNanos);
    writePod<uint8_t>(out, static_cast<uint8_t>(req.priority));
    writePod<uint64_t>(out, req.preemptionCount);
    writePod<uint64_t>(out, req.earliestRestart);
}

Request
readRequest(std::istream &in)
{
    Request req;
    req.id = readPod<uint64_t>(in);
    req.prompt = readPodVector<int>(in);
    req.arrivalIteration = readPod<uint64_t>(in);
    req.maxNewTokens = readPod<uint64_t>(in);
    req.deadlineIterations = readPod<uint64_t>(in);
    req.deadlineNanos = readPod<uint64_t>(in);
    req.priority = static_cast<Priority>(readPod<uint8_t>(in));
    req.preemptionCount = readPod<uint64_t>(in);
    req.earliestRestart = readPod<uint64_t>(in);
    return req;
}

void
writeStepRecord(std::ostream &out, const core::StepRecord &s)
{
    writePod<uint64_t>(out, s.treeSize);
    writePod<uint64_t>(out, s.verifiedTokens);
    writePod<uint64_t>(out, s.llmChunkTokens);
    writePod<uint64_t>(out, s.ssmTokensDecoded);
    writePod<uint8_t>(out, s.prefill ? 1 : 0);
    writePod<uint8_t>(out, s.fallback ? 1 : 0);
}

core::StepRecord
readStepRecord(std::istream &in)
{
    core::StepRecord s;
    s.treeSize = readPod<uint64_t>(in);
    s.verifiedTokens = readPod<uint64_t>(in);
    s.llmChunkTokens = readPod<uint64_t>(in);
    s.ssmTokensDecoded = readPod<uint64_t>(in);
    s.prefill = readPod<uint8_t>(in) != 0;
    s.fallback = readPod<uint8_t>(in) != 0;
    return s;
}

void
writeResult(std::ostream &out, const RequestResult &res)
{
    writePod<uint64_t>(out, res.id);
    writePodVector<int>(out, res.tokens);
    writePod<uint64_t>(out, res.stats.steps.size());
    for (const core::StepRecord &s : res.stats.steps)
        writeStepRecord(out, s);
    writePod<uint8_t>(out, static_cast<uint8_t>(res.stopReason));
    writePod<uint64_t>(out, res.arrivalIteration);
    writePod<uint64_t>(out, res.startIteration);
    writePod<uint64_t>(out, res.finishIteration);
    writePod<uint64_t>(out, res.preemptions);
    writePod<uint8_t>(out, static_cast<uint8_t>(res.priority));
}

RequestResult
readResult(std::istream &in)
{
    RequestResult res;
    res.id = readPod<uint64_t>(in);
    res.tokens = readPodVector<int>(in);
    uint64_t n_steps = readPod<uint64_t>(in);
    SPECINFER_CHECK(n_steps < (1ull << 32),
                    "implausible snapshot step count");
    res.stats.steps.reserve(n_steps);
    for (uint64_t i = 0; i < n_steps; ++i)
        res.stats.steps.push_back(readStepRecord(in));
    res.stopReason = static_cast<core::SpecSession::StopReason>(
        readPod<uint8_t>(in));
    res.arrivalIteration = readPod<uint64_t>(in);
    res.startIteration = readPod<uint64_t>(in);
    res.finishIteration = readPod<uint64_t>(in);
    res.preemptions = readPod<uint64_t>(in);
    res.priority = static_cast<Priority>(readPod<uint8_t>(in));
    return res;
}

} // namespace

RequestManager::RequestManager(const core::SpecEngine *engine,
                               ServingConfig cfg)
    : engine_(engine), cfg_(cfg), obs_(obs::resolveObs(cfg.obs)),
      backoffRng_(cfg.backoffJitterSeed)
{
    SPECINFER_CHECK(engine_ != nullptr, "null engine");
    SPECINFER_CHECK(cfg_.maxBatchSize > 0, "batch size must be >= 1");
    if (cfg_.kvPoolBlocks > 0)
        kvPool_ = std::make_unique<KvBlockAllocator>(
            cfg_.kvPoolBlocks, cfg_.kvBlockTokens, obs_);
    if (kvPool_ && cfg_.kvPrefixSharing) {
        const model::ModelConfig &mc = engine_->llm().config();
        prefixStore_ = std::make_unique<model::PrefixKvStore>(
            mc.nLayers, mc.dModel, cfg_.kvBlockTokens);
        // Accounting eviction drops the payload too — residency in
        // the store never outlives residency in the block table.
        kvPool_->setEvictionHook([this](uint64_t hash) {
            prefixStore_->evict(hash);
        });
    }
    if (obs_ != nullptr)
        // Millisecond buckets spanning sub-kernel ticks (ManualClock
        // tests) through multi-second straggler iterations.
        hIterMillis_ = obs_->metrics().histogram(
            "serving_iteration_millis",
            {0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
             500.0, 1000.0});
    // Baseline for pool_jobs_dispatched: the shared pool predates
    // the manager (and outlives it), so publish jobs dispatched
    // *during this serving run* rather than process lifetime —
    // keeping the gauge reproducible for identical workloads.
    poolJobsBaseline_ = util::ThreadPool::global().jobsDispatched();
    for (size_t cls = 0; cls < kPriorityCount; ++cls) {
        SPECINFER_CHECK(cfg_.classRefillEveryIterations[cls] > 0,
                        "class refill period must be >= 1");
        bucketLevel_[cls] = cfg_.classBucketCapacity[cls];
    }
}

void
RequestManager::refillBucket(size_t cls)
{
    const uint64_t every = cfg_.classRefillEveryIterations[cls];
    const uint64_t elapsed =
        stats_.iterations - bucketRefillIteration_[cls];
    const uint64_t periods = elapsed / every;
    if (periods == 0)
        return;
    bucketLevel_[cls] =
        std::min<uint64_t>(bucketLevel_[cls] + periods,
                           cfg_.classBucketCapacity[cls]);
    // Advance by whole periods only, so chunked refills compose to
    // exactly the single-shot refill (replay at arbitrary points
    // lands on the same level).
    bucketRefillIteration_[cls] += periods * every;
}

bool
RequestManager::bucketAdmit(Priority priority, uint64_t &retry_after)
{
    const size_t cls = static_cast<size_t>(priority);
    if (cfg_.classBucketCapacity[cls] == 0)
        return true; // unmetered class
    refillBucket(cls);
    if (bucketLevel_[cls] == 0) {
        const uint64_t every = cfg_.classRefillEveryIterations[cls];
        retry_after = bucketRefillIteration_[cls] + every -
                      stats_.iterations;
        return false;
    }
    return true;
}

void
RequestManager::consumeBucketToken(Priority priority)
{
    const size_t cls = static_cast<size_t>(priority);
    if (cfg_.classBucketCapacity[cls] == 0)
        return;
    refillBucket(cls);
    if (bucketLevel_[cls] > 0)
        --bucketLevel_[cls];
}

size_t
RequestManager::shedVictimIndex() const
{
    // Lowest class first (Batch before Standard before
    // Interactive), latest arrival within a class: an Interactive
    // request is never shed while any Batch request remains.
    size_t victim = pending_.size();
    for (size_t j = 0; j < pending_.size(); ++j) {
        if (victim == pending_.size() ||
            pending_[j].priority > pending_[victim].priority ||
            (pending_[j].priority == pending_[victim].priority &&
             pending_[j].id > pending_[victim].id))
            victim = j;
    }
    return victim;
}

void
RequestManager::shedPending(size_t index)
{
    Request shed = std::move(pending_[index]);
    pending_.erase(pending_.begin() +
                   static_cast<ptrdiff_t>(index));
    ++stats_.shedRequests;
    ++stats_.shedByClass[static_cast<size_t>(shed.priority)];
    finishAborted(std::move(shed), nullptr, stats_.iterations,
                  core::SpecSession::StopReason::Shed);
}

SubmitResult
RequestManager::submit(std::vector<int> prompt,
                       size_t max_new_tokens,
                       size_t deadline_iterations,
                       Priority priority,
                       uint64_t deadline_nanos)
{
    SubmitResult out;
    // Unserveable requests are typed rejections, not aborts: an
    // overloaded or misused serving pipeline must shed, never die.
    if (prompt.empty() ||
        prompt.size() + 2 >= engine_->llm().config().maxSeqLen) {
        out.reject = RejectReason::InvalidPrompt;
        ++stats_.rejectedNeverFits;
        return out;
    }
    // Per-class ingress metering: an empty bucket is overload for
    // this class specifically — other classes keep their own
    // budget, so a Batch burst cannot drain Interactive ingress.
    // The token is only *consumed* at acceptance below: rejected
    // submits are not journaled, so they must not mutate bucket
    // state replay cannot reconstruct.
    if (!bucketAdmit(priority, out.retryAfterIterations)) {
        out.reject = RejectReason::Overloaded;
        ++stats_.rejectedOverloaded;
        return out;
    }
    Request req;
    req.prompt = std::move(prompt);
    req.maxNewTokens = max_new_tokens;
    // Consistent with the active policy: OnDemand admits with
    // one iteration's footprint, so judge feasibility by that,
    // not the worst case — under prefix sharing this is what
    // keeps a request with a large shared prefix and a small
    // unique suffix serveable. No resident-prefix credit
    // beyond that: a sequence of T tokens needs ceil(T/block)
    // *distinct* resident blocks no matter how many holders
    // share them, so anything past totalBlocks() can never be
    // admitted and crediting it would strand it in pending.
    const bool never_fits =
        kvPool_ != nullptr &&
        kvPool_->blocksFor(admissionTokens(req)) >
            kvPool_->totalBlocks();
    if (cfg_.maxPendingRequests > 0 &&
        pending_.size() >= cfg_.maxPendingRequests) {
        // Shed-under-pressure: a full queue yields to a
        // higher-class arrival by shedding the lowest-class
        // (latest-arrival) pending request; equal-or-higher-class
        // arrivals (and unserveable ones — no point displacing a
        // viable request for them) are rejected as before.
        const size_t victim = shedVictimIndex();
        if (never_fits || victim == pending_.size() ||
            pending_[victim].priority <= priority) {
            out.reject = RejectReason::QueueFull;
            ++stats_.rejectedQueueFull;
            return out;
        }
        shedPending(victim);
    }
    if (never_fits) {
        out.reject = RejectReason::NeverFits;
        ++stats_.rejectedNeverFits;
        return out;
    }
    req.arrivalIteration = stats_.iterations;
    req.priority = priority;
    req.deadlineIterations = deadline_iterations > 0
                                 ? deadline_iterations
                                 : cfg_.defaultDeadlineIterations;
    req.deadlineNanos = deadline_nanos;
    if (req.deadlineNanos == 0 &&
        cfg_.defaultWallDeadlineNanos > 0 && obs_ != nullptr)
        req.deadlineNanos =
            obs_->nowNanos() + cfg_.defaultWallDeadlineNanos;
    consumeBucketToken(priority);
    req.id = nextId_++;
    out.id = req.id;
    if (obs_ != nullptr && obs_->tracer().enabled()) {
        req.submitNanos = obs_->nowNanos();
        obs_->tracer().instant(
            req.id, "serving", "submit", req.submitNanos,
            {{"prompt_tokens",
              static_cast<int64_t>(req.prompt.size())}});
    }
    if (journal_) {
        JournalRecord rec;
        rec.type = RecordType::Submit;
        rec.id = req.id;
        rec.arrivalIteration = req.arrivalIteration;
        rec.maxNewTokens = req.maxNewTokens;
        rec.deadlineIterations = req.deadlineIterations;
        rec.deadlineNanos = req.deadlineNanos;
        rec.priority = static_cast<uint8_t>(req.priority);
        rec.prompt = req.prompt;
        journal_->append(rec);
    }
    pending_.push_back(std::move(req));
    ++stats_.requestsSubmitted;
    return out;
}

bool
RequestManager::busy() const
{
    return !pending_.empty() || !active_.empty();
}

double
RequestManager::kvFragmentation() const
{
    if (kvPool_ == nullptr)
        return 0.0;
    const size_t bt = cfg_.kvBlockTokens;
    size_t actual_private = 0;
    for (const ActiveRequest &ar : active_) {
        const size_t total = ar.session.sequence().size();
        const size_t shared =
            kvPool_->requestSharedHashes(ar.request.id).size() * bt;
        actual_private += total > shared ? total - shared : 0;
    }
    return kvPool_->fragmentation(actual_private);
}

size_t
RequestManager::worstCaseTokens(const Request &req) const
{
    const size_t budget = req.maxNewTokens > 0
                              ? req.maxNewTokens
                              : engine_->config().maxNewTokens;
    return req.prompt.size() + budget + engine_->treeBudget() + 2;
}

size_t
RequestManager::admissionTokens(const Request &req) const
{
    return cfg_.kvPolicy == KvReservationPolicy::WorstCase
               ? worstCaseTokens(req)
               : req.prompt.size() + engine_->treeBudget() + 2;
}

uint64_t
RequestManager::admitKv(const Request &req,
                        core::SpecSession *session)
{
    PrefixMatch match;
    SPECINFER_CHECK(kvPool_->admit(req.id, req.prompt,
                                   admissionTokens(req),
                                   cfg_.kvPrefixSharing, &match),
                    "KV admission failed after canAdmit for "
                        << req.id);
    if (!prefixStore_)
        return 0;
    // Declare every own block so whichever session first has the
    // rows resident captures the payload (declare is idempotent).
    for (uint64_t hash : match.ownHashes)
        prefixStore_->declare(hash);
    session->enablePrefixSharing(prefixStore_.get());
    const size_t adopted = session->adoptPrefix(
        match.hashes, match.partialHash, match.partialTokens);
    if (adopted > 0 && obs_ != nullptr && obs_->tracer().enabled())
        obs_->tracer().instant(
            req.id, "serving", "prefix_adopt", obs_->nowNanos(),
            {{"tokens", static_cast<int64_t>(adopted)},
             {"blocks",
              static_cast<int64_t>(match.hashes.size())}});
    return match.partialHash;
}

void
RequestManager::settleCow(ActiveRequest &ar)
{
    if (ar.cowPending == 0 || !kvPool_)
        return;
    kvPool_->cowShared(ar.request.id, ar.cowPending);
    ar.cowPending = 0;
}

size_t
RequestManager::jitteredBackoff(size_t preemption_count)
{
    const size_t shift = std::min<size_t>(preemption_count, 16);
    const size_t base =
        std::min(size_t{1} << shift, cfg_.preemptBackoffCap);
    // One draw per preemption, live or replayed, keeps the RNG
    // cursor aligned across recovery.
    const size_t jitter = static_cast<size_t>(
        backoffRng_.uniformInt(static_cast<uint64_t>(base / 2 + 1)));
    return base + jitter;
}

RequestManager::RequestPhase
RequestManager::phase(uint64_t id) const
{
    for (const ActiveRequest &ar : active_)
        if (ar.request.id == id)
            return RequestPhase::Active;
    for (const Request &req : pending_)
        if (req.id == id)
            return RequestPhase::Pending;
    for (const RequestResult &res : finished_)
        if (res.id == id)
            return RequestPhase::Finished;
    return RequestPhase::Unknown;
}

std::vector<int>
RequestManager::generatedSoFar(uint64_t id) const
{
    for (const ActiveRequest &ar : active_)
        if (ar.request.id == id)
            return ar.session.generated();
    for (const RequestResult &res : finished_)
        if (res.id == id)
            return res.tokens;
    return {};
}

std::vector<RequestManager::InflightInfo>
RequestManager::inflight() const
{
    std::vector<InflightInfo> out;
    out.reserve(pending_.size() + active_.size());
    for (const Request &req : pending_)
        out.push_back({req.id, req.prompt, req.maxNewTokens,
                       req.priority});
    for (const ActiveRequest &ar : active_)
        out.push_back({ar.request.id, ar.request.prompt,
                       ar.request.maxNewTokens,
                       ar.request.priority});
    return out;
}

namespace {

/** KvAlloc fault key: one decision window per (request, iteration).
 *  Keyed (not stream-drawn) so the schedule is replay-stable — a
 *  recovered process re-running a torn step re-consults the same
 *  (id, iteration) and gets the same answer, and replayed steps
 *  that skip the consult cannot shift later decisions. Repeats
 *  within one iteration deliberately agree: allocation pressure is
 *  temporally correlated, not per-call coin flips. */
uint64_t
kvFaultKey(uint64_t id, uint64_t iteration)
{
    return (id + 1) * 0x9e3779b97f4a7c15ULL + iteration;
}

} // namespace

bool
RequestManager::tryReserve(uint64_t id, size_t tokens)
{
    // An injected allocation fault is indistinguishable from real
    // pool pressure, so the same preempt/retry/backoff machinery
    // absorbs both.
    if (util::faultAtKeyed(util::FaultPoint::KvAlloc,
                           kvFaultKey(id, stats_.iterations)))
        return false;
    return kvPool_->reserve(id, tokens);
}

void
RequestManager::finishAborted(Request &&req,
                              const core::SpecSession *session,
                              size_t start_iteration,
                              core::SpecSession::StopReason reason)
{
    RequestResult res;
    res.id = req.id;
    if (session != nullptr) {
        // Partial output: with deterministic per-request seeds this
        // is always a prefix of the request's full output.
        res.tokens = session->generated();
        res.stats = session->stats();
    }
    res.stopReason = reason;
    res.arrivalIteration = req.arrivalIteration;
    res.startIteration =
        session != nullptr ? start_iteration : stats_.iterations;
    res.finishIteration = stats_.iterations;
    res.preemptions = req.preemptionCount;
    res.priority = req.priority;
    stats_.tokensGenerated += res.tokens.size();
    ++stats_.requestsFinished;
    if (obs_ != nullptr && obs_->tracer().enabled())
        obs_->tracer().instant(
            res.id, "serving", "finish", obs_->nowNanos(),
            {{"stop", static_cast<int64_t>(res.stopReason)},
             {"tokens", static_cast<int64_t>(res.tokens.size())}});
    if (journal_)
        journalFinish(res);
    finished_.push_back(std::move(res));
}

void
RequestManager::requeuePreempted(Request &&req,
                                 const core::SpecSession *session)
{
    ++req.preemptionCount;
    if (cfg_.maxPreemptions > 0 &&
        req.preemptionCount > cfg_.maxPreemptions) {
        // Retry budget exhausted: fail cleanly instead of cycling
        // through the pool forever.
        ++stats_.preemptionAborts;
        finishAborted(std::move(req), session, stats_.iterations,
                      core::SpecSession::StopReason::Preempted);
        return;
    }
    // Jittered exponential backoff on re-admission: a request that
    // keeps losing its memory waits out the contention instead of
    // immediately re-stealing what it just lost, and the seeded
    // jitter keeps a cohort of preempted requests from re-colliding
    // in lockstep when their identical windows expire together.
    const size_t backoff = jitteredBackoff(req.preemptionCount);
    req.earliestRestart = stats_.iterations + backoff;
    if (obs_ != nullptr && obs_->tracer().enabled()) {
        // Restart the queue-wait clock: the next queue span covers
        // the backoff wait, not the request's whole lifetime.
        req.submitNanos = obs_->nowNanos();
        obs_->tracer().instant(
            req.id, "serving", "preempt", req.submitNanos,
            {{"count", static_cast<int64_t>(req.preemptionCount)},
             {"backoff", static_cast<int64_t>(backoff)}});
    }
    if (journal_) {
        JournalRecord rec;
        rec.type = RecordType::Preempt;
        rec.id = req.id;
        rec.preemptionCount = req.preemptionCount;
        rec.earliestRestart = req.earliestRestart;
        journal_->append(rec);
    }
    pending_.push_front(std::move(req));
    if (cfg_.maxPendingRequests > 0 &&
        pending_.size() > cfg_.maxPendingRequests) {
        // The requeue overflowed the bounded queue; shed the
        // lowest-class latest-arrival request to restore the bound.
        shedPending(shedVictimIndex());
    }
}

size_t
RequestManager::preemptLowestClass(uint64_t requester_id,
                                   Priority requester_priority)
{
    // Request ids increase with submission order, so (class, id) is
    // a total victimization order: a requester may steal from a
    // strictly lower class, or from a strictly later arrival of its
    // own class — never the reverse, so two requests cannot evict
    // each other forever. Among eligible victims the lowest class
    // goes first, then the latest arrival within that class.
    size_t victim = active_.size();
    for (size_t i = 0; i < active_.size(); ++i) {
        const Request &cand = active_[i].request;
        const bool eligible =
            cand.priority > requester_priority ||
            (cand.priority == requester_priority &&
             cand.id > requester_id);
        if (!eligible)
            continue;
        if (victim == active_.size() ||
            cand.priority > active_[victim].request.priority ||
            (cand.priority == active_[victim].request.priority &&
             cand.id > active_[victim].request.id))
            victim = i;
    }
    if (victim == active_.size())
        return kNoVictim;
    // Release memory and requeue for a fresh (recomputed) start;
    // seeding by request id keeps the eventual output identical.
    kvPool_->release(active_[victim].request.id);
    ++stats_.preemptions;
    requeuePreempted(std::move(active_[victim].request),
                     &active_[victim].session);
    active_.erase(active_.begin() + static_cast<ptrdiff_t>(victim));
    return victim;
}

bool
RequestManager::deadlineExpired(const Request &req) const
{
    if (req.deadlineIterations > 0 &&
        stats_.iterations >=
            req.arrivalIteration + req.deadlineIterations)
        return true;
    // Wall-clock budget on the injectable clock, checked against
    // the once-per-iteration cached reading: real stalls consume it
    // even while the iteration clock stands still.
    return req.deadlineNanos > 0 && obs_ != nullptr &&
           nowNanos_ >= req.deadlineNanos;
}

void
RequestManager::expirePendingDeadlines()
{
    for (size_t j = 0; j < pending_.size();) {
        Request &req = pending_[j];
        if (deadlineExpired(req)) {
            ++stats_.deadlineExpiries;
            Request dead = std::move(req);
            pending_.erase(pending_.begin() +
                           static_cast<ptrdiff_t>(j));
            finishAborted(std::move(dead), nullptr, stats_.iterations,
                          core::SpecSession::StopReason::Deadline);
        } else {
            ++j;
        }
    }
}

bool
RequestManager::cancel(uint64_t id)
{
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->id != id)
            continue;
        Request req = std::move(*it);
        pending_.erase(it);
        ++stats_.cancellations;
        finishAborted(std::move(req), nullptr, stats_.iterations,
                      core::SpecSession::StopReason::Cancelled);
        return true;
    }
    for (size_t i = 0; i < active_.size(); ++i) {
        if (active_[i].request.id != id)
            continue;
        if (kvPool_)
            kvPool_->release(id);
        ++stats_.cancellations;
        finishAborted(std::move(active_[i].request),
                      &active_[i].session, active_[i].startIteration,
                      core::SpecSession::StopReason::Cancelled);
        active_.erase(active_.begin() + static_cast<ptrdiff_t>(i));
        return true;
    }
    return false;
}

void
RequestManager::updateDegradation(bool speculation_ran,
                                  bool fault_seen)
{
    if (cfg_.degradeAfterConsecutiveFaults == 0 || !speculation_ran)
        return;
    if (fault_seen) {
        degr_.cleanIterations = 0;
        if (++degr_.consecutiveFaults <
            cfg_.degradeAfterConsecutiveFaults)
            return;
        degr_.currentBackoff =
            degr_.currentBackoff == 0
                ? cfg_.degradeBackoffIterations
                : std::min(degr_.currentBackoff * 2,
                           cfg_.degradeBackoffMax);
        degr_.reenableIteration =
            stats_.iterations + degr_.currentBackoff;
        degr_.speculationDisabled = true;
        ++degr_.disableEpisodes;
        degr_.consecutiveFaults = 0;
        SPECINFER_WARN("degradation: speculation disabled for "
                       << degr_.currentBackoff
                       << " iterations after repeated SSM faults");
    } else {
        degr_.consecutiveFaults = 0;
        // A fault-free stretch as long as the trigger resets the
        // backoff ladder.
        if (++degr_.cleanIterations >=
            cfg_.degradeAfterConsecutiveFaults)
            degr_.currentBackoff = 0;
    }
}

void
RequestManager::forceDegrade(size_t backoff_iterations)
{
    if (backoff_iterations == 0)
        return;
    degr_.speculationDisabled = true;
    degr_.reenableIteration =
        std::max(degr_.reenableIteration,
                 stats_.iterations + backoff_iterations);
    ++degr_.disableEpisodes;
    degr_.consecutiveFaults = 0;
    degr_.cleanIterations = 0;
}

void
RequestManager::runIteration()
{
    if (crashed_)
        return;
    // Crash point: a clean crash at an iteration boundary (all
    // journal records of the previous iteration committed). Only
    // live with a journal attached — a crash without one is
    // unrecoverable and outside the model.
    if (journal_ && util::faultAt(util::FaultPoint::Crash)) {
        noteCrash();
        return;
    }

    // Resuming a half-journaled iteration after recovery: reuse the
    // clock reading the crashed process journaled in its Begin
    // record, so every deadline decision in the resumed half sees
    // the same timestamp the uninterrupted run would have.
    const bool resuming = resumeIteration_;
    resumeIteration_ = false;
    const uint64_t iter_start =
        resuming ? nowNanos_
                 : (obs_ != nullptr ? obs_->nowNanos() : 0);
    // One wall-clock reading per iteration: every wall-deadline
    // decision this iteration compares against it, keeping the
    // number of clock reads independent of queue contents (a
    // ManualClock schedule stays aligned across recovery).
    nowNanos_ = iter_start;
    if (journal_)
        journalBegin();
    auto obsIterationEnd = [&](size_t batch) {
        if (obs_ == nullptr)
            return;
        const uint64_t end = obs_->nowNanos();
        hIterMillis_->observe(
            static_cast<double>(end - iter_start) / 1.0e6);
        if (obs_->tracer().enabled())
            obs_->tracer().span(
                0, "serving", "iteration", iter_start, end,
                {{"batch", static_cast<int64_t>(batch)},
                 {"iteration",
                  static_cast<int64_t>(stats_.iterations)}});
        publishMetrics();
    };

    // Degradation ladder: re-enable speculation when the backoff
    // window has elapsed.
    if (degr_.speculationDisabled &&
        stats_.iterations >= degr_.reenableIteration) {
        degr_.speculationDisabled = false;
        SPECINFER_INFO("degradation: speculation re-enabled");
    }

    // Requests whose deadline expired while queued fail before
    // consuming a batch slot.
    expirePendingDeadlines();

    // Admit pending requests into the free batch slots. Static
    // batching only admits into an idle engine; continuous batching
    // admits whenever a slot is free. With a KV pool, admission
    // additionally requires a memory reservation. Preempted
    // requests in their backoff window are skipped (later arrivals
    // may overtake them) but keep their FCFS eviction priority.
    const bool may_admit =
        cfg_.policy == SchedulingPolicy::Continuous ||
        active_.empty();
    // When resuming, Admit replay already rebuilt exactly the batch
    // the crashed process admitted; running admission again here
    // would fill slots that only freed up mid-iteration (retired
    // requests), starting those requests one clock tick earlier
    // than the uninterrupted run would have.
    if (may_admit && !resuming) {
        while (active_.size() < cfg_.maxBatchSize) {
            // Priority-aware head-of-line: the highest class admits
            // first (queue order within a class), so an Interactive
            // arrival overtakes queued Batch work. Preempted
            // requests in their backoff window are skipped (later
            // arrivals may overtake them) but keep their eviction
            // priority; with every request in the default class
            // this degenerates to the original FCFS scan.
            size_t j = pending_.size();
            for (size_t k = 0; k < pending_.size(); ++k) {
                if (pending_[k].earliestRestart > stats_.iterations)
                    continue;
                if (j == pending_.size() ||
                    pending_[k].priority < pending_[j].priority)
                    j = k;
            }
            if (j == pending_.size())
                break;
            Request &cand = pending_[j];
            if (kvPool_) {
                // A full pool at the admission probe is routine
                // backpressure, not an allocation failure: gate on
                // the read-only check so kv_alloc_failures counts
                // genuine exhaustion events (see the on-demand
                // growth path), never head-of-line waiting.
                if (!kvPool_->canAdmit(cand.id, cand.prompt,
                                       admissionTokens(cand),
                                       cfg_.kvPrefixSharing))
                    break; // pool full; retry next iteration
                // An injected allocation fault still delays
                // admission exactly like pool pressure would.
                if (util::faultAtKeyed(
                        util::FaultPoint::KvAlloc,
                        kvFaultKey(cand.id, stats_.iterations)))
                    break;
            }
            Request req = std::move(cand);
            pending_.erase(pending_.begin() +
                           static_cast<ptrdiff_t>(j));
            if (req.preemptionCount > 0)
                ++stats_.preemptionRetries;
            if (obs_ != nullptr && obs_->tracer().enabled() &&
                req.submitNanos != 0)
                // Queue wait ends at admission; re-admissions after
                // a preemption produce a second queue span.
                obs_->tracer().span(
                    req.id, "serving", "queue", req.submitNanos,
                    obs_->nowNanos(),
                    {{"preemptions", static_cast<int64_t>(
                                         req.preemptionCount)}});
            core::SpecSession session = engine_->makeSession(
                req.prompt, req.id, req.maxNewTokens);
            uint64_t cow_pending = 0;
            if (kvPool_)
                cow_pending = admitKv(req, &session);
            active_.push_back({std::move(req), std::move(session),
                               stats_.iterations, cow_pending});
            if (journal_)
                journalAdmit(active_.back().request.id,
                             active_.back().session.cachedTokens());
        }
    }
    if (active_.empty()) {
        // Nothing runnable; still counts as a scheduling tick so
        // arrival bookkeeping stays monotone.
        if (cfg_.captureBatchTrace)
            stats_.batchSizeTrace.push_back(0);
        ++stats_.iterations;
        if (journal_)
            journalIteration(false, false);
        obsIterationEnd(0);
        return;
    }
    if (cfg_.captureBatchTrace)
        stats_.batchSizeTrace.push_back(active_.size());
    const size_t batch_size = active_.size();

    // Injected straggler: the iteration clock jumps forward,
    // consuming deadline budget exactly as a slow iteration would.
    bool slow_iteration = false;
    if (util::faultAt(util::FaultPoint::SlowIteration)) {
        slow_iteration = true;
        ++stats_.slowIterations;
        stats_.iterations += cfg_.slowIterationPenalty;
    }

    // One decoding iteration per active request (iteration-level
    // scheduling: requests at different progress advance together).
    // Under on-demand paging a request's growth may exhaust the
    // pool mid-flight; the youngest active request is then
    // preempted and restarted later (vLLM-style recompute), within
    // its retry budget.
    const bool allow_spec = !degr_.speculationDisabled;
    // A resumed iteration seeds the degradation evidence with what
    // replay saw in the already-journaled steps, so the commit feeds
    // updateDegradation the same signals the crashed process had.
    bool speculation_ran = resuming && resumeSpecRan_;
    bool fault_seen = resuming && resumeFaultSeen_;
    resumeSpecRan_ = false;
    resumeFaultSeen_ = false;
    for (size_t i = 0; i < active_.size();) {
        // Replay already applied this request's step for the
        // iteration being resumed (its Step record was durable);
        // re-running it would double-step the session.
        if (active_[i].steppedThisIteration) {
            active_[i].steppedThisIteration = false;
            ++i;
            continue;
        }
        Request &req = active_[i].request;
        if (deadlineExpired(req)) {
            ++stats_.deadlineExpiries;
            if (kvPool_)
                kvPool_->release(req.id);
            finishAborted(std::move(req), &active_[i].session,
                          active_[i].startIteration,
                          core::SpecSession::StopReason::Deadline);
            active_.erase(active_.begin() +
                          static_cast<ptrdiff_t>(i));
            continue;
        }
        const uint64_t id = req.id;
        const Priority cls = req.priority;
        if (kvPool_ &&
            cfg_.kvPolicy == KvReservationPolicy::OnDemand) {
            const size_t need = active_[i].session.sequence().size() +
                                engine_->treeBudget() + 2;
            // canReserve gates the fallible call so backpressure
            // resolved by preemption never counts as an allocation
            // failure; tryReserve still interposes the fault point.
            bool ok = kvPool_->canReserve(id, need) &&
                      tryReserve(id, need);
            while (!ok) {
                size_t erased = preemptLowestClass(id, cls);
                if (erased == kNoVictim)
                    break;
                if (erased < i)
                    --i; // our element shifted left
                ok = kvPool_->canReserve(id, need) &&
                     tryReserve(id, need);
            }
            if (!ok) {
                // Genuine exhaustion: no victim left to preempt and
                // the pool still cannot grow this request. Count the
                // failure exactly once (an injected fault with a
                // non-exhausted pool counts nothing).
                if (!kvPool_->canReserve(id, need))
                    (void)kvPool_->reserve(id, need);
                // Last resort: preempt this request itself (it will
                // restart when memory frees, or fail cleanly once
                // its retry budget runs out).
                kvPool_->release(id);
                ++stats_.preemptions;
                requeuePreempted(std::move(active_[i].request),
                                 &active_[i].session);
                active_.erase(active_.begin() +
                              static_cast<ptrdiff_t>(i));
                continue;
            }
        }
        const size_t seq_before = active_[i].session.sequence().size();
        const size_t lp_before = active_[i].session.logProbs().size();
        active_[i].session.step(allow_spec);
        // First write past the divergence point of a partially
        // shared block: release the shared reference — the private
        // block charged at admission owns those positions now.
        settleCow(active_[i]);
        if (stepObserver_) {
            // logProbs() is parallel to generated(), so lp_before is
            // the pre-step generated length: everything past it is
            // this step's freshly committed tokens.
            const std::vector<int> gen =
                active_[i].session.generated();
            if (gen.size() > lp_before)
                stepObserver_(active_[i].request.id, lp_before,
                              std::vector<int>(
                                  gen.begin() +
                                      static_cast<ptrdiff_t>(
                                          lp_before),
                                  gen.end()));
        }
        ++stats_.requestIterations;
        const core::StepRecord &last =
            active_[i].session.stats().steps.back();
        if (!last.prefill && allow_spec) {
            speculation_ran = true;
            if (last.fallback) {
                fault_seen = true;
                ++stats_.fallbackSteps;
            }
        }
        if (journal_) {
            // Crash points around the write-ahead append. Before:
            // the process dies *during* the append, leaving a torn
            // record (the step is lost and will recompute
            // deterministically after recovery). After: the record
            // is durable but nothing past it is — the worst case
            // for replay, the step committed to the journal only.
            const bool torn = util::faultAt(util::FaultPoint::Crash);
            if (torn)
                journal_->tearNextAppend();
            journalStep(i, seq_before, lp_before);
            if (torn || util::faultAt(util::FaultPoint::Crash)) {
                noteCrash();
                return;
            }
        }
        ++i;
    }
    if (!allow_spec)
        ++stats_.degradedIterations;
    ++stats_.iterations;
    updateDegradation(speculation_ran, fault_seen);

    // Retire finished requests; their slots free up immediately.
    for (size_t i = 0; i < active_.size();) {
        if (!active_[i].session.done()) {
            ++i;
            continue;
        }
        ActiveRequest &ar = active_[i];
        RequestResult res;
        res.id = ar.request.id;
        res.tokens = ar.session.generated();
        res.stats = ar.session.stats();
        res.stopReason = ar.session.stopReason();
        res.arrivalIteration = ar.request.arrivalIteration;
        res.startIteration = ar.startIteration;
        res.finishIteration = stats_.iterations - 1;
        res.preemptions = ar.request.preemptionCount;
        res.priority = ar.request.priority;
        stats_.tokensGenerated += res.tokens.size();
        ++stats_.requestsFinished;
        if (kvPool_)
            kvPool_->release(res.id);
        if (obs_ != nullptr && obs_->tracer().enabled())
            obs_->tracer().instant(
                res.id, "serving", "finish", obs_->nowNanos(),
                {{"stop", static_cast<int64_t>(res.stopReason)},
                 {"tokens",
                  static_cast<int64_t>(res.tokens.size())}});
        if (journal_)
            journalFinish(res);
        finished_.push_back(std::move(res));
        active_.erase(active_.begin() + static_cast<ptrdiff_t>(i));
    }

    if (journal_) {
        // Crash point: everything this iteration journaled but the
        // iteration commit itself lost — recovery resumes the
        // iteration (Begin record), skips the already-replayed
        // steps, and commits, so even wall-clock deadlines land at
        // the same session progress as the uninterrupted run.
        if (util::faultAt(util::FaultPoint::Crash)) {
            noteCrash();
            return;
        }
        journalIteration(!allow_spec, slow_iteration);
    }
    obsIterationEnd(batch_size);
}

void
RequestManager::runUntilDrained()
{
    while (busy() && !crashed_)
        runIteration();
}

std::vector<RequestResult>
RequestManager::takeFinished()
{
    std::vector<RequestResult> out = std::move(finished_);
    finished_.clear();
    return out;
}

void
RequestManager::noteCrash()
{
    crashed_ = true;
    if (obs_ == nullptr)
        return;
    // Crashes are event-time counters, never gauge-synced: a
    // recovered manager has no memory of dying, so the count must
    // survive in the registry, not in ServingStats.
    obs_->metrics().counter("serving_crashes")->inc();
    if (obs_->tracer().enabled())
        obs_->tracer().instant(0, "serving", "crash",
                               obs_->nowNanos());
    publishMetrics();
}

void
RequestManager::publishMetrics()
{
    if (obs_ == nullptr)
        return;
    obs::MetricsRegistry &reg = obs_->metrics();
    auto set = [&reg](const char *name, size_t value) {
        reg.gauge(name)->set(static_cast<int64_t>(value));
    };
    set("serving_pending_requests", pending_.size());
    set("serving_active_requests", active_.size());
    set("serving_iterations", stats_.iterations);
    set("serving_requests_submitted", stats_.requestsSubmitted);
    set("serving_requests_finished", stats_.requestsFinished);
    set("serving_tokens_generated", stats_.tokensGenerated);
    set("serving_request_iterations", stats_.requestIterations);
    set("serving_preemptions", stats_.preemptions);
    set("serving_preemption_retries", stats_.preemptionRetries);
    set("serving_preemption_aborts", stats_.preemptionAborts);
    set("serving_rejected_queue_full", stats_.rejectedQueueFull);
    set("serving_rejected_never_fits", stats_.rejectedNeverFits);
    set("serving_shed_requests", stats_.shedRequests);
    set("serving_rejected_overloaded", stats_.rejectedOverloaded);
    set("serving_shed_by_class_interactive",
        stats_.shedByClass[static_cast<size_t>(
            Priority::Interactive)]);
    set("serving_shed_by_class_standard",
        stats_.shedByClass[static_cast<size_t>(Priority::Standard)]);
    set("serving_shed_by_class_batch",
        stats_.shedByClass[static_cast<size_t>(Priority::Batch)]);
    set("serving_deadline_expiries", stats_.deadlineExpiries);
    set("serving_cancellations", stats_.cancellations);
    set("serving_fallback_steps", stats_.fallbackSteps);
    set("serving_degraded_iterations", stats_.degradedIterations);
    set("serving_slow_iterations", stats_.slowIterations);
    set("serving_speculation_disabled",
        degr_.speculationDisabled ? 1 : 0);
    // The util layer is obs-free by design; the pool self-counts
    // its jobs and the manager publishes the count here.
    util::ThreadPool &pool = util::ThreadPool::global();
    set("pool_threads", pool.threads());
    set("pool_jobs_dispatched",
        static_cast<size_t>(pool.jobsDispatched() -
                            poolJobsBaseline_));
    if (kvPool_)
        kvPool_->publishUsage();
}

void
RequestManager::journalStep(size_t index, size_t seq_before,
                            size_t log_probs_before)
{
    const ActiveRequest &ar = active_[index];
    const std::vector<int> &seq = ar.session.sequence();
    const std::vector<float> &lps = ar.session.logProbs();
    JournalRecord rec;
    rec.type = RecordType::Step;
    rec.id = ar.request.id;
    rec.tokens.assign(seq.begin() +
                          static_cast<ptrdiff_t>(seq_before),
                      seq.end());
    rec.logProbs.assign(lps.begin() +
                            static_cast<ptrdiff_t>(log_probs_before),
                        lps.end());
    rec.step = ar.session.stats().steps.back();
    rec.rngAfter = ar.session.rngCursor();
    rec.sessionDone = ar.session.done();
    rec.stopReason = static_cast<uint8_t>(ar.session.stopReason());
    journal_->append(rec);
}

void
RequestManager::journalFinish(const RequestResult &res)
{
    JournalRecord rec;
    rec.type = RecordType::Finish;
    rec.id = res.id;
    rec.stopReason = static_cast<uint8_t>(res.stopReason);
    rec.arrivalIteration = res.arrivalIteration;
    rec.startIteration = res.startIteration;
    rec.finishIteration = res.finishIteration;
    rec.preemptions = res.preemptions;
    journal_->append(rec);
}

void
RequestManager::journalIteration(bool degraded, bool slow)
{
    JournalRecord rec;
    rec.type = RecordType::Iteration;
    rec.iteration = stats_.iterations;
    rec.iterDegraded = degraded ? 1 : 0;
    rec.iterSlow = slow ? 1 : 0;
    rec.degrSpeculationDisabled = degr_.speculationDisabled ? 1 : 0;
    rec.degrConsecutiveFaults = degr_.consecutiveFaults;
    rec.degrCleanIterations = degr_.cleanIterations;
    rec.degrCurrentBackoff = degr_.currentBackoff;
    rec.degrReenableIteration = degr_.reenableIteration;
    rec.degrDisableEpisodes = degr_.disableEpisodes;
    journal_->append(rec);
    // Opt-in durability: harden the whole iteration's records at
    // the commit boundary (one fdatasync per iteration, not per
    // record — see ServingConfig::journalFsync).
    if (cfg_.journalFsync)
        journal_->sync();
}

void
RequestManager::journalBegin()
{
    JournalRecord rec;
    rec.type = RecordType::Begin;
    rec.iteration = stats_.iterations;
    rec.iterNanos = nowNanos_;
    journal_->append(rec);
}

void
RequestManager::journalAdmit(uint64_t id, uint64_t adopted_tokens)
{
    JournalRecord rec;
    rec.type = RecordType::Admit;
    rec.id = id;
    rec.adoptedTokens = adopted_tokens;
    journal_->append(rec);
}

void
RequestManager::writeSnapshot(std::ostream &out) const
{
    out.write(kSnapMagic, 4);
    writePod<uint32_t>(out, kSnapVersion);
    writePod<uint64_t>(out,
                       journal_ ? journal_->bytesWritten() : 0);
    writePod<uint64_t>(out, nextId_);
    writePod<uint8_t>(out, cfg_.ssmPrecision);
    writePod<uint8_t>(out, cfg_.tpDegree);

    writePod<uint64_t>(out, stats_.iterations);
    writePod<uint64_t>(out, stats_.requestsSubmitted);
    writePod<uint64_t>(out, stats_.requestsFinished);
    writePod<uint64_t>(out, stats_.tokensGenerated);
    writePod<uint64_t>(out, stats_.requestIterations);
    writePod<uint64_t>(out, stats_.preemptions);
    writePod<uint64_t>(out, stats_.rejectedQueueFull);
    writePod<uint64_t>(out, stats_.rejectedNeverFits);
    writePod<uint64_t>(out, stats_.shedRequests);
    writePod<uint64_t>(out, stats_.deadlineExpiries);
    writePod<uint64_t>(out, stats_.cancellations);
    writePod<uint64_t>(out, stats_.fallbackSteps);
    writePod<uint64_t>(out, stats_.degradedIterations);
    writePod<uint64_t>(out, stats_.preemptionRetries);
    writePod<uint64_t>(out, stats_.preemptionAborts);
    writePod<uint64_t>(out, stats_.slowIterations);
    writePod<uint64_t>(out, stats_.rejectedOverloaded);
    for (size_t cls = 0; cls < kPriorityCount; ++cls)
        writePod<uint64_t>(out, stats_.shedByClass[cls]);
    // Per-class ingress buckets: levels and refill cursors, so a
    // recovered manager meters exactly where the crashed one left
    // off (replayed Submits then re-consume on top).
    for (size_t cls = 0; cls < kPriorityCount; ++cls) {
        writePod<uint64_t>(out, bucketLevel_[cls]);
        writePod<uint64_t>(out, bucketRefillIteration_[cls]);
    }
    writePod<uint64_t>(out, stats_.batchSizeTrace.size());
    for (size_t b : stats_.batchSizeTrace)
        writePod<uint64_t>(out, b);

    writePod<uint8_t>(out, degr_.speculationDisabled ? 1 : 0);
    writePod<uint64_t>(out, degr_.consecutiveFaults);
    writePod<uint64_t>(out, degr_.cleanIterations);
    writePod<uint64_t>(out, degr_.currentBackoff);
    writePod<uint64_t>(out, degr_.reenableIteration);
    writePod<uint64_t>(out, degr_.disableEpisodes);

    // Resume state (v6): a snapshot taken between a mid-iteration
    // recovery and the next runIteration must hand the resumed
    // iteration its journaled clock reading and step evidence.
    writePod<uint8_t>(out, resumeIteration_ ? 1 : 0);
    writePod<uint64_t>(out, nowNanos_);
    writePod<uint8_t>(out, resumeSpecRan_ ? 1 : 0);
    writePod<uint8_t>(out, resumeFaultSeen_ ? 1 : 0);

    // Backoff-jitter RNG cursor: recovery must resume with the same
    // draw sequence an uninterrupted run would have used, or
    // post-crash preemption windows (and thus token-identity)
    // diverge.
    const util::RngState rng_state = backoffRng_.state();
    for (uint64_t word : rng_state.s)
        writePod<uint64_t>(out, word);

    writePod<uint64_t>(out, pending_.size());
    for (const Request &req : pending_)
        writeRequest(out, req);

    // Resident shared-block table, in hash order. Chain depth is
    // persisted (not re-derived) so restore order never matters —
    // eviction gaps can leave a child resident without its parent.
    if (kvPool_) {
        const auto &table = kvPool_->sharedTable();
        writePod<uint64_t>(out, table.size());
        for (const auto &entry : table) {
            writePod<uint64_t>(out, entry.first);
            writePod<uint64_t>(out, entry.second.parent);
            writePod<uint64_t>(out, entry.second.depth);
            writePodVector<int>(out, entry.second.tokens);
        }
    } else {
        writePod<uint64_t>(out, 0);
    }

    writePod<uint64_t>(out, active_.size());
    for (const ActiveRequest &ar : active_) {
        writeRequest(out, ar.request);
        writePod<uint64_t>(out, ar.startIteration);
        // Exact pool holding, not a recomputed need: the restore
        // must reproduce live occupancy block-for-block.
        writePod<uint64_t>(out,
                           kvPool_ ? kvPool_->requestBlocks(
                                         ar.request.id)
                                   : 0);
        writePodVector<uint64_t>(
            out, kvPool_ ? kvPool_->requestSharedHashes(
                               ar.request.id)
                         : std::vector<uint64_t>{});
        writePod<uint64_t>(out,
                           kvPool_ ? kvPool_->requestPartial(
                                         ar.request.id)
                                   : 0);
        writePod<uint64_t>(out, ar.cowPending);
        writePod<uint8_t>(out, ar.steppedThisIteration ? 1 : 0);
        ar.session.save(out);
    }

    writePod<uint64_t>(out, finished_.size());
    for (const RequestResult &res : finished_)
        writeResult(out, res);
    SPECINFER_CHECK(out.good(), "snapshot write failed");
}

void
RequestManager::applyRecord(const JournalRecord &rec)
{
    auto findActive = [this](uint64_t id) {
        for (size_t i = 0; i < active_.size(); ++i)
            if (active_[i].request.id == id)
                return i;
        return active_.size();
    };
    auto takePending = [this](uint64_t id, Request &out) {
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
            if (it->id != id)
                continue;
            out = std::move(*it);
            pending_.erase(it);
            return true;
        }
        return false;
    };

    switch (rec.type) {
      case RecordType::Submit: {
        Request req;
        req.id = rec.id;
        req.prompt = rec.prompt;
        req.arrivalIteration = rec.arrivalIteration;
        req.maxNewTokens = rec.maxNewTokens;
        req.deadlineIterations = rec.deadlineIterations;
        req.deadlineNanos = rec.deadlineNanos;
        req.priority = static_cast<Priority>(rec.priority);
        // Journaled Submits are exactly the accepted ones, so
        // replay re-consumes the same ingress token the live
        // submit did (the iteration clock is replay-aligned, so
        // the lazy refill lands on the same level too).
        consumeBucketToken(req.priority);
        nextId_ = std::max(nextId_, rec.id + 1);
        pending_.push_back(std::move(req));
        ++stats_.requestsSubmitted;
        break;
      }

      case RecordType::Step: {
        size_t idx = findActive(rec.id);
        if (idx == active_.size()) {
            // First journaled step ⇒ the request was admitted this
            // iteration: move it out of pending and reserve its
            // admission memory, exactly as live admission did.
            Request req;
            SPECINFER_CHECK(takePending(rec.id, req),
                            "journal step for unknown request "
                                << rec.id);
            if (req.preemptionCount > 0)
                ++stats_.preemptionRetries;
            core::SpecSession session = engine_->makeSession(
                req.prompt, req.id, req.maxNewTokens);
            uint64_t cow_pending = 0;
            // Replay re-runs the same admit (intern + reference +
            // reserve) the live run performed; deterministic
            // eviction means it cannot fail where live succeeded.
            // Adoption is best-effort as always — a cold store just
            // leaves the rows for the catch-up decode.
            if (kvPool_)
                cow_pending = admitKv(req, &session);
            active_.push_back({std::move(req), std::move(session),
                               stats_.iterations, cow_pending});
            idx = active_.size() - 1;
        }
        ActiveRequest &ar = active_[idx];
        if (kvPool_ &&
            cfg_.kvPolicy == KvReservationPolicy::OnDemand) {
            const size_t need = ar.session.sequence().size() +
                                engine_->treeBudget() + 2;
            SPECINFER_CHECK(kvPool_->reserve(ar.request.id, need),
                            "replay KV growth failed for "
                                << ar.request.id);
        }
        ar.session.restoreStep(
            rec.tokens, rec.logProbs, rec.step, rec.rngAfter,
            rec.sessionDone,
            static_cast<core::SpecSession::StopReason>(
                rec.stopReason));
        // Mirror the live post-step copy-on-write release.
        settleCow(ar);
        // Redo-recovery: bring the KV cache to the level the live
        // run held after this step, so the session does not repeat
        // prefill iterations after recovery (wall-clock deadlines
        // would observe the delay). A prefill chunk re-absorbs the
        // same chunk; a decode step leaves exactly the last token
        // uncached (the next step's tree root).
        if (!rec.sessionDone) {
            if (rec.step.prefill)
                ar.session.hydrateKv(ar.session.cachedTokens() +
                                     rec.step.llmChunkTokens);
            else
                ar.session.hydrateKv(ar.session.sequence().size() -
                                     1);
        }
        ar.steppedThisIteration = true;
        ++stats_.requestIterations;
        if (!rec.step.prefill && !degr_.speculationDisabled) {
            resumeSpecRan_ = true;
            if (rec.step.fallback) {
                resumeFaultSeen_ = true;
                ++stats_.fallbackSteps;
            }
        }
        break;
      }

      case RecordType::Preempt: {
        Request req;
        size_t idx = findActive(rec.id);
        if (idx != active_.size()) {
            req = std::move(active_[idx].request);
            active_.erase(active_.begin() +
                          static_cast<ptrdiff_t>(idx));
        } else {
            // Preempted before its first step was journaled: the
            // request never left replay's pending queue.
            SPECINFER_CHECK(takePending(rec.id, req),
                            "journal preempt for unknown request "
                                << rec.id);
        }
        if (kvPool_ && kvPool_->requestBlocks(rec.id) > 0)
            kvPool_->release(rec.id);
        // Consume the jitter draw the live run made so the RNG
        // cursor stays aligned; the journaled restart window is
        // authoritative.
        (void)jitteredBackoff(rec.preemptionCount);
        req.preemptionCount = rec.preemptionCount;
        req.earliestRestart = rec.earliestRestart;
        pending_.push_front(std::move(req));
        ++stats_.preemptions;
        break;
      }

      case RecordType::Finish: {
        RequestResult res;
        res.id = rec.id;
        res.stopReason =
            static_cast<core::SpecSession::StopReason>(
                rec.stopReason);
        res.arrivalIteration = rec.arrivalIteration;
        res.startIteration = rec.startIteration;
        res.finishIteration = rec.finishIteration;
        res.preemptions = rec.preemptions;
        size_t idx = findActive(rec.id);
        if (idx != active_.size()) {
            res.tokens = active_[idx].session.generated();
            res.stats = active_[idx].session.stats();
            res.priority = active_[idx].request.priority;
            active_.erase(active_.begin() +
                          static_cast<ptrdiff_t>(idx));
        } else {
            Request req;
            SPECINFER_CHECK(takePending(rec.id, req),
                            "journal finish for unknown request "
                                << rec.id);
            res.priority = req.priority;
        }
        if (kvPool_ && kvPool_->requestBlocks(rec.id) > 0)
            kvPool_->release(rec.id);
        stats_.tokensGenerated += res.tokens.size();
        ++stats_.requestsFinished;
        switch (res.stopReason) {
          case core::SpecSession::StopReason::Cancelled:
            ++stats_.cancellations;
            break;
          case core::SpecSession::StopReason::Deadline:
            ++stats_.deadlineExpiries;
            break;
          case core::SpecSession::StopReason::Shed:
            ++stats_.shedRequests;
            ++stats_.shedByClass[static_cast<size_t>(res.priority)];
            break;
          case core::SpecSession::StopReason::Preempted:
            ++stats_.preemptionAborts;
            ++stats_.preemptions;
            break;
          default:
            break;
        }
        finished_.push_back(std::move(res));
        break;
      }

      case RecordType::Iteration: {
        stats_.iterations = rec.iteration;
        if (rec.iterDegraded)
            ++stats_.degradedIterations;
        if (rec.iterSlow)
            ++stats_.slowIterations;
        degr_.speculationDisabled =
            rec.degrSpeculationDisabled != 0;
        degr_.consecutiveFaults = rec.degrConsecutiveFaults;
        degr_.cleanIterations = rec.degrCleanIterations;
        degr_.currentBackoff = rec.degrCurrentBackoff;
        degr_.reenableIteration = rec.degrReenableIteration;
        degr_.disableEpisodes = rec.degrDisableEpisodes;
        // The iteration committed: close the in-flight window the
        // Begin record opened.
        resumeIteration_ = false;
        resumeSpecRan_ = false;
        resumeFaultSeen_ = false;
        for (ActiveRequest &ar : active_)
            ar.steppedThisIteration = false;
        break;
      }

      case RecordType::Begin: {
        // An iteration began. Mirror the live-run speculation
        // re-enable check first (same state, same clock), so replayed
        // step evidence below classifies against the allow_spec the
        // crashed process actually used. If no matching Iteration
        // commit follows, the crash landed mid-iteration: the next
        // runIteration resumes it with this journaled clock reading.
        if (degr_.speculationDisabled &&
            stats_.iterations >= degr_.reenableIteration)
            degr_.speculationDisabled = false;
        resumeIteration_ = true;
        nowNanos_ = rec.iterNanos;
        break;
      }

      case RecordType::Admit: {
        // Re-run the same admission the crashed process journaled:
        // out of pending, session built, KV reserved — but not yet
        // stepped, so a resumed iteration runs its step live.
        Request req;
        SPECINFER_CHECK(takePending(rec.id, req),
                        "journal admit for unknown request "
                            << rec.id);
        if (req.preemptionCount > 0)
            ++stats_.preemptionRetries;
        core::SpecSession session = engine_->makeSession(
            req.prompt, req.id, req.maxNewTokens);
        uint64_t cow_pending = 0;
        if (kvPool_)
            cow_pending = admitKv(req, &session);
        // The crashed process may have adopted shared prefix rows
        // from its warm store; the recovering store is cold, so
        // recompute up to the journaled adoption level — identical
        // rows, identical remaining prefill iterations.
        session.hydrateKv(rec.adoptedTokens);
        active_.push_back({std::move(req), std::move(session),
                           stats_.iterations, cow_pending});
        break;
      }
    }
}

uint64_t
RequestManager::recover(std::istream *snapshot, std::istream *journal)
{
    SPECINFER_CHECK(!crashed_ && stats_.iterations == 0 &&
                    pending_.empty() && active_.empty() &&
                    finished_.empty() && nextId_ == 1,
                    "recover() requires a freshly constructed "
                    "manager");
    uint64_t skip = 0;
    if (snapshot != nullptr) {
        char magic[4];
        snapshot->read(magic, 4);
        SPECINFER_CHECK(snapshot->good() &&
                        std::memcmp(magic, kSnapMagic, 4) == 0,
                        "not a SpecInfer serving snapshot");
        uint32_t version = readPod<uint32_t>(*snapshot);
        SPECINFER_CHECK(version == kSnapVersion,
                        "unsupported snapshot version " << version);
        skip = readPod<uint64_t>(*snapshot);
        nextId_ = readPod<uint64_t>(*snapshot);
        const uint8_t snap_precision = readPod<uint8_t>(*snapshot);
        SPECINFER_CHECK(snap_precision == cfg_.ssmPrecision,
                        "snapshot was taken with SSM precision "
                            << unsigned(snap_precision)
                            << " but this manager is configured for "
                            << unsigned(cfg_.ssmPrecision)
                            << "; recovery must replay under the "
                               "same draft-model numerics");
        const uint8_t snap_tp = readPod<uint8_t>(*snapshot);
        SPECINFER_CHECK(snap_tp == cfg_.tpDegree,
                        "snapshot was taken with tensor-parallel "
                        "degree "
                            << unsigned(snap_tp)
                            << " but this manager is configured for "
                            << unsigned(cfg_.tpDegree)
                            << "; recovery must replay under the "
                               "same sharded execution shape");

        stats_.iterations = readPod<uint64_t>(*snapshot);
        stats_.requestsSubmitted = readPod<uint64_t>(*snapshot);
        stats_.requestsFinished = readPod<uint64_t>(*snapshot);
        stats_.tokensGenerated = readPod<uint64_t>(*snapshot);
        stats_.requestIterations = readPod<uint64_t>(*snapshot);
        stats_.preemptions = readPod<uint64_t>(*snapshot);
        stats_.rejectedQueueFull = readPod<uint64_t>(*snapshot);
        stats_.rejectedNeverFits = readPod<uint64_t>(*snapshot);
        stats_.shedRequests = readPod<uint64_t>(*snapshot);
        stats_.deadlineExpiries = readPod<uint64_t>(*snapshot);
        stats_.cancellations = readPod<uint64_t>(*snapshot);
        stats_.fallbackSteps = readPod<uint64_t>(*snapshot);
        stats_.degradedIterations = readPod<uint64_t>(*snapshot);
        stats_.preemptionRetries = readPod<uint64_t>(*snapshot);
        stats_.preemptionAborts = readPod<uint64_t>(*snapshot);
        stats_.slowIterations = readPod<uint64_t>(*snapshot);
        stats_.rejectedOverloaded = readPod<uint64_t>(*snapshot);
        for (size_t cls = 0; cls < kPriorityCount; ++cls)
            stats_.shedByClass[cls] = readPod<uint64_t>(*snapshot);
        for (size_t cls = 0; cls < kPriorityCount; ++cls) {
            bucketLevel_[cls] = readPod<uint64_t>(*snapshot);
            bucketRefillIteration_[cls] =
                readPod<uint64_t>(*snapshot);
        }
        uint64_t trace_len = readPod<uint64_t>(*snapshot);
        SPECINFER_CHECK(trace_len < (1ull << 32),
                        "implausible snapshot trace length");
        stats_.batchSizeTrace.resize(trace_len);
        for (uint64_t i = 0; i < trace_len; ++i)
            stats_.batchSizeTrace[i] = readPod<uint64_t>(*snapshot);

        degr_.speculationDisabled =
            readPod<uint8_t>(*snapshot) != 0;
        degr_.consecutiveFaults = readPod<uint64_t>(*snapshot);
        degr_.cleanIterations = readPod<uint64_t>(*snapshot);
        degr_.currentBackoff = readPod<uint64_t>(*snapshot);
        degr_.reenableIteration = readPod<uint64_t>(*snapshot);
        degr_.disableEpisodes = readPod<uint64_t>(*snapshot);

        resumeIteration_ = readPod<uint8_t>(*snapshot) != 0;
        nowNanos_ = readPod<uint64_t>(*snapshot);
        resumeSpecRan_ = readPod<uint8_t>(*snapshot) != 0;
        resumeFaultSeen_ = readPod<uint8_t>(*snapshot) != 0;

        util::RngState rng_state;
        for (uint64_t &word : rng_state.s)
            word = readPod<uint64_t>(*snapshot);
        backoffRng_.setState(rng_state);

        uint64_t n_pending = readPod<uint64_t>(*snapshot);
        SPECINFER_CHECK(n_pending < (1ull << 32),
                        "implausible snapshot pending count");
        for (uint64_t i = 0; i < n_pending; ++i)
            pending_.push_back(readRequest(*snapshot));

        uint64_t n_shared = readPod<uint64_t>(*snapshot);
        SPECINFER_CHECK(n_shared < (1ull << 32),
                        "implausible snapshot shared-block count");
        SPECINFER_CHECK(n_shared == 0 || kvPool_ != nullptr,
                        "snapshot has shared blocks but this "
                        "manager has no KV pool");
        for (uint64_t i = 0; i < n_shared; ++i) {
            uint64_t hash = readPod<uint64_t>(*snapshot);
            uint64_t parent = readPod<uint64_t>(*snapshot);
            uint64_t depth = readPod<uint64_t>(*snapshot);
            std::vector<int> tokens = readPodVector<int>(*snapshot);
            kvPool_->restoreSharedBlock(hash, parent, depth,
                                        std::move(tokens));
            // Declared but cold: payload rows are not persisted, so
            // adoption misses until some session republishes them.
            if (prefixStore_)
                prefixStore_->declare(hash);
        }

        uint64_t n_active = readPod<uint64_t>(*snapshot);
        SPECINFER_CHECK(n_active < (1ull << 20),
                        "implausible snapshot active count");
        for (uint64_t i = 0; i < n_active; ++i) {
            Request req = readRequest(*snapshot);
            uint64_t start_iter = readPod<uint64_t>(*snapshot);
            uint64_t held_blocks = readPod<uint64_t>(*snapshot);
            std::vector<uint64_t> shared_hashes =
                readPodVector<uint64_t>(*snapshot);
            uint64_t partial = readPod<uint64_t>(*snapshot);
            uint64_t cow_pending = readPod<uint64_t>(*snapshot);
            const bool stepped = readPod<uint8_t>(*snapshot) != 0;
            core::SpecSession session =
                engine_->loadSession(*snapshot);
            if (kvPool_) {
                for (uint64_t hash : shared_hashes)
                    kvPool_->restoreAcquire(req.id, hash, false);
                if (partial != 0)
                    kvPool_->restoreAcquire(req.id, partial, true);
                // reserve() counts the re-acquired shared blocks
                // toward the total, so this grows the holding by
                // exactly the snapshotted private blocks.
                if (held_blocks > 0)
                    SPECINFER_CHECK(
                        kvPool_->reserve(req.id,
                                         held_blocks *
                                             kvPool_->blockTokens()),
                        "snapshot KV restore failed for " << req.id);
            }
            if (prefixStore_)
                session.enablePrefixSharing(prefixStore_.get());
            active_.push_back({std::move(req), std::move(session),
                               start_iter, cow_pending, stepped});
        }

        uint64_t n_finished = readPod<uint64_t>(*snapshot);
        SPECINFER_CHECK(n_finished < (1ull << 32),
                        "implausible snapshot finished count");
        for (uint64_t i = 0; i < n_finished; ++i)
            finished_.push_back(readResult(*snapshot));
    }

    uint64_t replayed = 0;
    if (journal != nullptr) {
        if (skip > 0)
            journal->seekg(static_cast<std::streamoff>(skip),
                           std::ios::cur);
        JournalReader reader(*journal);
        JournalRecord rec;
        while (reader.next(rec))
            applyRecord(rec);
        replayed = reader.bytesConsumed();
    }

    // Sessions that finished in the crash iteration, after their
    // Step record but before their Finish record: when the crash
    // landed mid-iteration (Begin without its commit), the next
    // runIteration resumes that iteration and retires them at the
    // exact point the uninterrupted run would have — holding their
    // KV through the remaining live steps, matching the crashed
    // process's memory pressure. Only a boundary crash (no open
    // Begin) retires them here.
    for (size_t i = 0; resumeIteration_ == false &&
                       i < active_.size();) {
        if (!active_[i].session.done()) {
            ++i;
            continue;
        }
        ActiveRequest &ar = active_[i];
        RequestResult res;
        res.id = ar.request.id;
        res.tokens = ar.session.generated();
        res.stats = ar.session.stats();
        res.stopReason = ar.session.stopReason();
        res.arrivalIteration = ar.request.arrivalIteration;
        res.startIteration = ar.startIteration;
        res.finishIteration = stats_.iterations;
        res.preemptions = ar.request.preemptionCount;
        res.priority = ar.request.priority;
        stats_.tokensGenerated += res.tokens.size();
        ++stats_.requestsFinished;
        if (kvPool_ && kvPool_->requestBlocks(res.id) > 0)
            kvPool_->release(res.id);
        if (journal_)
            journalFinish(res);
        finished_.push_back(std::move(res));
        active_.erase(active_.begin() + static_cast<ptrdiff_t>(i));
    }
    if (obs_ != nullptr) {
        obs_->metrics().counter("serving_recoveries")->inc();
        if (obs_->tracer().enabled())
            obs_->tracer().instant(
                0, "serving", "recovered", obs_->nowNanos(),
                {{"snapshot_bytes", static_cast<int64_t>(skip)},
                 {"replayed_bytes",
                  static_cast<int64_t>(replayed)}});
        publishMetrics();
    }
    return skip + replayed;
}

} // namespace runtime
} // namespace specinfer
