#include "runtime/request_manager.h"

#include <algorithm>

#include "util/fault.h"
#include "util/logging.h"

namespace specinfer {
namespace runtime {

RequestManager::RequestManager(const core::SpecEngine *engine,
                               ServingConfig cfg)
    : engine_(engine), cfg_(cfg)
{
    SPECINFER_CHECK(engine_ != nullptr, "null engine");
    SPECINFER_CHECK(cfg_.maxBatchSize > 0, "batch size must be >= 1");
    if (cfg_.kvPoolBlocks > 0)
        kvPool_ = std::make_unique<KvBlockAllocator>(
            cfg_.kvPoolBlocks, cfg_.kvBlockTokens);
}

SubmitResult
RequestManager::submit(std::vector<int> prompt,
                       size_t max_new_tokens,
                       size_t deadline_iterations)
{
    SubmitResult out;
    // Unserveable requests are typed rejections, not aborts: an
    // overloaded or misused serving pipeline must shed, never die.
    if (prompt.empty() ||
        prompt.size() + 2 >= engine_->llm().config().maxSeqLen) {
        out.reject = RejectReason::InvalidPrompt;
        ++stats_.rejectedNeverFits;
        return out;
    }
    if (cfg_.maxPendingRequests > 0 &&
        pending_.size() >= cfg_.maxPendingRequests) {
        out.reject = RejectReason::QueueFull;
        ++stats_.rejectedQueueFull;
        return out;
    }
    Request req;
    req.prompt = std::move(prompt);
    req.arrivalIteration = stats_.iterations;
    req.maxNewTokens = max_new_tokens;
    req.deadlineIterations = deadline_iterations > 0
                                 ? deadline_iterations
                                 : cfg_.defaultDeadlineIterations;
    if (kvPool_ &&
        kvPool_->blocksFor(worstCaseTokens(req)) >
            kvPool_->totalBlocks()) {
        out.reject = RejectReason::NeverFits;
        ++stats_.rejectedNeverFits;
        return out;
    }
    req.id = nextId_++;
    out.id = req.id;
    pending_.push_back(std::move(req));
    ++stats_.requestsSubmitted;
    return out;
}

bool
RequestManager::busy() const
{
    return !pending_.empty() || !active_.empty();
}

size_t
RequestManager::worstCaseTokens(const Request &req) const
{
    const size_t budget = req.maxNewTokens > 0
                              ? req.maxNewTokens
                              : engine_->config().maxNewTokens;
    return req.prompt.size() + budget + engine_->treeBudget() + 2;
}

bool
RequestManager::tryReserve(uint64_t id, size_t tokens)
{
    // An injected allocation fault is indistinguishable from real
    // pool pressure, so the same preempt/retry/backoff machinery
    // absorbs both.
    if (util::faultAt(util::FaultPoint::KvAlloc))
        return false;
    return kvPool_->reserve(id, tokens);
}

void
RequestManager::finishAborted(Request &&req,
                              const core::SpecSession *session,
                              size_t start_iteration,
                              core::SpecSession::StopReason reason)
{
    RequestResult res;
    res.id = req.id;
    if (session != nullptr) {
        // Partial output: with deterministic per-request seeds this
        // is always a prefix of the request's full output.
        res.tokens = session->generated();
        res.stats = session->stats();
    }
    res.stopReason = reason;
    res.arrivalIteration = req.arrivalIteration;
    res.startIteration =
        session != nullptr ? start_iteration : stats_.iterations;
    res.finishIteration = stats_.iterations;
    res.preemptions = req.preemptionCount;
    stats_.tokensGenerated += res.tokens.size();
    ++stats_.requestsFinished;
    finished_.push_back(std::move(res));
}

void
RequestManager::requeuePreempted(Request &&req,
                                 const core::SpecSession *session)
{
    ++req.preemptionCount;
    if (cfg_.maxPreemptions > 0 &&
        req.preemptionCount > cfg_.maxPreemptions) {
        // Retry budget exhausted: fail cleanly instead of cycling
        // through the pool forever.
        ++stats_.preemptionAborts;
        finishAborted(std::move(req), session, stats_.iterations,
                      core::SpecSession::StopReason::Preempted);
        return;
    }
    // Exponential backoff on re-admission: a request that keeps
    // losing its memory waits out the contention instead of
    // immediately re-stealing what it just lost.
    const size_t shift =
        std::min<size_t>(req.preemptionCount, size_t{16});
    const size_t backoff =
        std::min(size_t{1} << shift, cfg_.preemptBackoffCap);
    req.earliestRestart = stats_.iterations + backoff;
    pending_.push_front(std::move(req));
    if (cfg_.maxPendingRequests > 0 &&
        pending_.size() > cfg_.maxPendingRequests) {
        // The requeue overflowed the bounded queue; shed the tail
        // (latest arrival) to restore the bound.
        Request shed = std::move(pending_.back());
        pending_.pop_back();
        ++stats_.shedRequests;
        finishAborted(std::move(shed), nullptr, stats_.iterations,
                      core::SpecSession::StopReason::Shed);
    }
}

size_t
RequestManager::preemptLatestArrival(uint64_t requester)
{
    // Request ids increase with submission order, so the id is the
    // arrival priority: only strictly later arrivals are eligible
    // victims, and among them the latest goes first.
    size_t victim = active_.size();
    for (size_t i = 0; i < active_.size(); ++i) {
        if (active_[i].request.id <= requester)
            continue;
        if (victim == active_.size() ||
            active_[i].request.id > active_[victim].request.id)
            victim = i;
    }
    if (victim == active_.size())
        return kNoVictim;
    // Release memory and requeue for a fresh (recomputed) start;
    // seeding by request id keeps the eventual output identical.
    kvPool_->release(active_[victim].request.id);
    ++stats_.preemptions;
    requeuePreempted(std::move(active_[victim].request),
                     &active_[victim].session);
    active_.erase(active_.begin() + static_cast<ptrdiff_t>(victim));
    return victim;
}

void
RequestManager::expirePendingDeadlines()
{
    for (size_t j = 0; j < pending_.size();) {
        Request &req = pending_[j];
        if (req.deadlineIterations > 0 &&
            stats_.iterations >=
                req.arrivalIteration + req.deadlineIterations) {
            ++stats_.deadlineExpiries;
            Request dead = std::move(req);
            pending_.erase(pending_.begin() +
                           static_cast<ptrdiff_t>(j));
            finishAborted(std::move(dead), nullptr, stats_.iterations,
                          core::SpecSession::StopReason::Deadline);
        } else {
            ++j;
        }
    }
}

bool
RequestManager::cancel(uint64_t id)
{
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->id != id)
            continue;
        Request req = std::move(*it);
        pending_.erase(it);
        ++stats_.cancellations;
        finishAborted(std::move(req), nullptr, stats_.iterations,
                      core::SpecSession::StopReason::Cancelled);
        return true;
    }
    for (size_t i = 0; i < active_.size(); ++i) {
        if (active_[i].request.id != id)
            continue;
        if (kvPool_)
            kvPool_->release(id);
        ++stats_.cancellations;
        finishAborted(std::move(active_[i].request),
                      &active_[i].session, active_[i].startIteration,
                      core::SpecSession::StopReason::Cancelled);
        active_.erase(active_.begin() + static_cast<ptrdiff_t>(i));
        return true;
    }
    return false;
}

void
RequestManager::updateDegradation(bool speculation_ran,
                                  bool fault_seen)
{
    if (cfg_.degradeAfterConsecutiveFaults == 0 || !speculation_ran)
        return;
    if (fault_seen) {
        degr_.cleanIterations = 0;
        if (++degr_.consecutiveFaults <
            cfg_.degradeAfterConsecutiveFaults)
            return;
        degr_.currentBackoff =
            degr_.currentBackoff == 0
                ? cfg_.degradeBackoffIterations
                : std::min(degr_.currentBackoff * 2,
                           cfg_.degradeBackoffMax);
        degr_.reenableIteration =
            stats_.iterations + degr_.currentBackoff;
        degr_.speculationDisabled = true;
        ++degr_.disableEpisodes;
        degr_.consecutiveFaults = 0;
        SPECINFER_WARN("degradation: speculation disabled for "
                       << degr_.currentBackoff
                       << " iterations after repeated SSM faults");
    } else {
        degr_.consecutiveFaults = 0;
        // A fault-free stretch as long as the trigger resets the
        // backoff ladder.
        if (++degr_.cleanIterations >=
            cfg_.degradeAfterConsecutiveFaults)
            degr_.currentBackoff = 0;
    }
}

void
RequestManager::runIteration()
{
    // Degradation ladder: re-enable speculation when the backoff
    // window has elapsed.
    if (degr_.speculationDisabled &&
        stats_.iterations >= degr_.reenableIteration) {
        degr_.speculationDisabled = false;
        SPECINFER_INFO("degradation: speculation re-enabled");
    }

    // Requests whose deadline expired while queued fail before
    // consuming a batch slot.
    expirePendingDeadlines();

    // Admit pending requests into the free batch slots. Static
    // batching only admits into an idle engine; continuous batching
    // admits whenever a slot is free. With a KV pool, admission
    // additionally requires a memory reservation. Preempted
    // requests in their backoff window are skipped (later arrivals
    // may overtake them) but keep their FCFS eviction priority.
    const bool may_admit =
        cfg_.policy == SchedulingPolicy::Continuous ||
        active_.empty();
    if (may_admit) {
        for (size_t j = 0;
             active_.size() < cfg_.maxBatchSize &&
             j < pending_.size();) {
            Request &cand = pending_[j];
            if (cand.earliestRestart > stats_.iterations) {
                ++j;
                continue;
            }
            if (kvPool_) {
                const size_t need =
                    cfg_.kvPolicy == KvReservationPolicy::WorstCase
                        ? worstCaseTokens(cand)
                        : cand.prompt.size() +
                              engine_->treeBudget() + 2;
                if (!tryReserve(cand.id, need))
                    break; // pool exhausted; retry next iteration
            }
            Request req = std::move(cand);
            pending_.erase(pending_.begin() +
                           static_cast<ptrdiff_t>(j));
            if (req.preemptionCount > 0)
                ++stats_.preemptionRetries;
            core::SpecSession session = engine_->makeSession(
                req.prompt, req.id, req.maxNewTokens);
            active_.push_back({std::move(req), std::move(session),
                               stats_.iterations});
        }
    }
    if (active_.empty()) {
        // Nothing runnable; still counts as a scheduling tick so
        // arrival bookkeeping stays monotone.
        if (cfg_.captureBatchTrace)
            stats_.batchSizeTrace.push_back(0);
        ++stats_.iterations;
        return;
    }
    if (cfg_.captureBatchTrace)
        stats_.batchSizeTrace.push_back(active_.size());

    // Injected straggler: the iteration clock jumps forward,
    // consuming deadline budget exactly as a slow iteration would.
    if (util::faultAt(util::FaultPoint::SlowIteration)) {
        ++stats_.slowIterations;
        stats_.iterations += cfg_.slowIterationPenalty;
    }

    // One decoding iteration per active request (iteration-level
    // scheduling: requests at different progress advance together).
    // Under on-demand paging a request's growth may exhaust the
    // pool mid-flight; the youngest active request is then
    // preempted and restarted later (vLLM-style recompute), within
    // its retry budget.
    const bool allow_spec = !degr_.speculationDisabled;
    bool speculation_ran = false;
    bool fault_seen = false;
    for (size_t i = 0; i < active_.size();) {
        Request &req = active_[i].request;
        if (req.deadlineIterations > 0 &&
            stats_.iterations >=
                req.arrivalIteration + req.deadlineIterations) {
            ++stats_.deadlineExpiries;
            if (kvPool_)
                kvPool_->release(req.id);
            finishAborted(std::move(req), &active_[i].session,
                          active_[i].startIteration,
                          core::SpecSession::StopReason::Deadline);
            active_.erase(active_.begin() +
                          static_cast<ptrdiff_t>(i));
            continue;
        }
        const uint64_t id = req.id;
        if (kvPool_ &&
            cfg_.kvPolicy == KvReservationPolicy::OnDemand) {
            const size_t need = active_[i].session.sequence().size() +
                                engine_->treeBudget() + 2;
            bool ok = tryReserve(id, need);
            while (!ok) {
                size_t erased = preemptLatestArrival(id);
                if (erased == kNoVictim)
                    break;
                if (erased < i)
                    --i; // our element shifted left
                ok = tryReserve(id, need);
            }
            if (!ok) {
                // Last resort: preempt this request itself (it will
                // restart when memory frees, or fail cleanly once
                // its retry budget runs out).
                kvPool_->release(id);
                ++stats_.preemptions;
                requeuePreempted(std::move(active_[i].request),
                                 &active_[i].session);
                active_.erase(active_.begin() +
                              static_cast<ptrdiff_t>(i));
                continue;
            }
        }
        active_[i].session.step(allow_spec);
        ++stats_.requestIterations;
        const core::StepRecord &last =
            active_[i].session.stats().steps.back();
        if (!last.prefill && allow_spec) {
            speculation_ran = true;
            if (last.fallback) {
                fault_seen = true;
                ++stats_.fallbackSteps;
            }
        }
        ++i;
    }
    if (!allow_spec)
        ++stats_.degradedIterations;
    ++stats_.iterations;
    updateDegradation(speculation_ran, fault_seen);

    // Retire finished requests; their slots free up immediately.
    for (size_t i = 0; i < active_.size();) {
        if (!active_[i].session.done()) {
            ++i;
            continue;
        }
        ActiveRequest &ar = active_[i];
        RequestResult res;
        res.id = ar.request.id;
        res.tokens = ar.session.generated();
        res.stats = ar.session.stats();
        res.stopReason = ar.session.stopReason();
        res.arrivalIteration = ar.request.arrivalIteration;
        res.startIteration = ar.startIteration;
        res.finishIteration = stats_.iterations - 1;
        res.preemptions = ar.request.preemptionCount;
        stats_.tokensGenerated += res.tokens.size();
        ++stats_.requestsFinished;
        if (kvPool_)
            kvPool_->release(res.id);
        finished_.push_back(std::move(res));
        active_.erase(active_.begin() + static_cast<ptrdiff_t>(i));
    }
}

void
RequestManager::runUntilDrained()
{
    while (busy())
        runIteration();
}

std::vector<RequestResult>
RequestManager::takeFinished()
{
    std::vector<RequestResult> out = std::move(finished_);
    finished_.clear();
    return out;
}

} // namespace runtime
} // namespace specinfer
