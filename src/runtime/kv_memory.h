/**
 * @file
 * Paged KV-cache memory accounting and admission control.
 *
 * The paper's introduction motivates speculation partly through KV
 * memory pressure: caching keys and values for long sequences
 * limits how many requests can be served in parallel. This module
 * models the block-granular KV memory pool of a modern serving
 * system (as popularized by vLLM's PagedAttention, cited as a
 * baseline in §6): requests reserve fixed-size token blocks as
 * their sequences grow, and the request manager admits a request
 * only when its footprint fits.
 *
 * Beyond private reservations the allocator maintains a *block
 * table* of hash-consed prefix blocks for multi-tenant traffic:
 * full blocks of a prompt prefix are content-hashed (chained, see
 * util/hash.h) and interned with refcounts, so requests sharing a
 * system prompt or RAG context hold one physical block many times.
 * A request holding a shared block pays 1/refcount of it in
 * admission fairness accounting (effectiveBlocks()); its first
 * write past the divergence point releases the shared reference in
 * favor of the private block charged at admission — copy-on-write
 * at block granularity (cowShared()). Zero-reference blocks stay
 * resident as a prefix cache and are reclaimed under pressure by a
 * *deterministic* eviction policy (deepest chain first, largest
 * hash as tie-break): eviction is a pure function of the resident
 * set, so crash-recovery journal replay evicts exactly the blocks
 * the live run evicted.
 */

#ifndef SPECINFER_RUNTIME_KV_MEMORY_H
#define SPECINFER_RUNTIME_KV_MEMORY_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace specinfer {
namespace obs {
class Counter;
class Gauge;
class ObsContext;
}
namespace runtime {

/** Aggregate pool statistics. */
struct KvMemoryStats
{
    size_t peakUsedBlocks = 0;    ///< high-water mark
    size_t failedReservations = 0;///< reserve() calls that failed
    size_t totalReservations = 0; ///< successful reserve() calls
    /** release() calls for a request holding nothing (double
     *  release, or an id that never reserved). Well-defined no-ops,
     *  but counted: a nonzero value in a path that should release
     *  exactly once flags an accounting bug upstream. */
    size_t redundantReleases = 0;

    // --- Prefix sharing -------------------------------------------

    /** Shared-block acquisitions that found the block resident. */
    size_t prefixHits = 0;
    /** Shared-block acquisitions that interned a fresh block. */
    size_t prefixMisses = 0;
    /** Copy-on-write events: a partially-shared block reference
     *  released on the holder's first write past the divergence. */
    size_t cowCopies = 0;
    /** Zero-reference resident blocks reclaimed under pressure. */
    size_t sharedEvictions = 0;
};

/** Result of matching a prompt against the resident block table. */
struct PrefixMatch
{
    /** Resident full-block chain matching the prompt, in chain
     *  order (block 0 first). */
    std::vector<uint64_t> hashes;
    /** Resident block matching a strict prefix of the first
     *  unmatched prompt block (0 = none). A holder of a partial
     *  match diverges from the block mid-way, so its first write
     *  there is a copy-on-write event. */
    uint64_t partialHash = 0;
    /** Matched tokens inside partialHash (0 when partialHash is 0). */
    size_t partialTokens = 0;
    /** Chain hashes of *all* full blocks of the prompt (matched
     *  prefix first); admission interns the unmatched tail. */
    std::vector<uint64_t> ownHashes;

    /** Tokens covered by the fully matched chain. */
    size_t fullTokens(size_t block_tokens) const
    {
        return hashes.size() * block_tokens;
    }
};

/**
 * Block-granular KV memory pool shared by all requests of one
 * serving pipeline.
 *
 * A request's private reservation is expressed in tokens and
 * rounded up to blocks; reservations only grow (sequences never
 * shrink) until the request releases everything at completion.
 * Shared prefix blocks enter a holding via admit() and leave via
 * cowShared() or release().
 */
class KvBlockAllocator
{
  public:
    /** One interned prefix block. */
    struct SharedBlock
    {
        std::vector<int> tokens; ///< full block content
        uint64_t parent = 0;     ///< predecessor chain hash (0 = first)
        size_t depth = 0;        ///< chain position (0 = first block)
        size_t refs = 0;         ///< holders; 0 = evictable resident
    };

    /**
     * @param total_blocks Pool capacity in blocks.
     * @param block_tokens Tokens per block (vLLM default: 16).
     * @param obs Optional observability context (non-owning): the
     *        allocator keeps blocks-in-use / shared-blocks gauges
     *        and allocation-failure / sharing counters live.
     *        Null = no-op.
     */
    KvBlockAllocator(size_t total_blocks, size_t block_tokens,
                     obs::ObsContext *obs = nullptr);

    size_t totalBlocks() const { return totalBlocks_; }
    /** Physically occupied blocks: private + resident shared (each
     *  shared block counted once regardless of refcount). */
    size_t usedBlocks() const { return usedBlocks_; }
    size_t freeBlocks() const { return totalBlocks_ - usedBlocks_; }
    size_t blockTokens() const { return blockTokens_; }

    /** Blocks required to hold the given number of tokens. */
    size_t blocksFor(size_t tokens) const;

    /** True when a reservation of `tokens` for `request` would
     *  succeed (accounting for its current holding and for
     *  zero-reference resident blocks, which reserve() reclaims on
     *  demand). */
    bool canReserve(uint64_t request, size_t tokens) const;

    /**
     * Grow request's reservation to cover `tokens` tokens in total
     * (shared blocks already held count toward the total, so growth
     * only adds private blocks past what sharing covers).
     * @return false (and change nothing) when the pool is exhausted;
     *         shrinking requests is a no-op returning true.
     */
    bool reserve(uint64_t request, size_t tokens);

    /** Release all blocks held by the request: private blocks
     *  return to the pool; shared references are dropped, leaving
     *  the blocks resident (zero-ref) for future admissions. */
    void release(uint64_t request);

    /** Blocks currently accounted to the request: private plus
     *  fully-held shared chain blocks (a partial reference is
     *  payload-only and excluded — the private reservation already
     *  covers those positions). 0 if unknown. */
    size_t requestBlocks(uint64_t request) const;

    /** Number of requests currently holding blocks. */
    size_t activeRequests() const { return held_.size(); }

    // --- Prefix sharing -------------------------------------------

    /** Walk the prompt's chained block hashes against the resident
     *  table: longest resident full-block chain, plus at most one
     *  partially-matching resident block past it. Read-only. */
    PrefixMatch matchPrefix(const std::vector<int> &prompt) const;

    /**
     * True when admit() for this request would succeed: the
     * unmatched full blocks plus the private remainder of
     * `total_tokens` fit into free blocks plus evictable
     * zero-reference residents (excluding the blocks the admission
     * itself would re-reference).
     */
    bool canAdmit(uint64_t request, const std::vector<int> &prompt,
                  size_t total_tokens, bool share) const;

    /**
     * Admit a request in one atomic step: reference the resident
     * prefix chain (and partial block, if any), intern the prompt's
     * unmatched full blocks, and reserve private blocks so the
     * holding covers `total_tokens`. With share == false this is
     * exactly reserve(request, total_tokens).
     *
     * Gate on canAdmit() — a failed admit changes nothing but
     * counts a failed reservation.
     *
     * @param out_match Filled with the match used (own hashes
     *        included) so callers can adopt payload rows and
     *        declare store entries. May be null.
     */
    bool admit(uint64_t request, const std::vector<int> &prompt,
               size_t total_tokens, bool share,
               PrefixMatch *out_match);

    /**
     * Copy-on-write: the request wrote past its divergence point
     * inside `hash`, which it held as a partial match. Drops the
     * shared reference (the private block charged at admission owns
     * those positions now) and counts the event. Aborts if the
     * request does not hold `hash` as its partial block.
     */
    void cowShared(uint64_t request, uint64_t hash);

    /** True when the hash is interned and resident. */
    bool sharedResident(uint64_t hash) const;

    /** Current reference count of a resident block (0 if absent). */
    size_t sharedRefs(uint64_t hash) const;

    /** Resident shared blocks (any refcount). */
    size_t residentSharedBlocks() const { return shared_.size(); }

    /** Fair-share footprint: private blocks plus 1/refcount of
     *  every shared block held (partial included). Multi-tenant
     *  accounting divides a shared block's cost across holders. */
    double effectiveBlocks(uint64_t request) const;

    /** Resident intern table, for snapshots. */
    const std::map<uint64_t, SharedBlock> &sharedTable() const
    {
        return shared_;
    }

    /** Shared chain hashes held by the request (empty if none). */
    std::vector<uint64_t> requestSharedHashes(uint64_t request) const;

    /** The request's partial-match block hash (0 = none). */
    uint64_t requestPartial(uint64_t request) const;

    /** Re-create one interned block from a snapshot, resident with
     *  zero references; holders re-reference via restoreAcquire.
     *  Depth is persisted (not derived) so restore order does not
     *  matter. */
    void restoreSharedBlock(uint64_t hash, uint64_t parent,
                            size_t depth, std::vector<int> tokens);

    /** Re-reference a resident block for a recovering holder
     *  (partial == true restores a partial-match reference). */
    void restoreAcquire(uint64_t request, uint64_t hash,
                        bool partial);

    /** Hook invoked with each evicted block hash (the payload
     *  store drops its rows); null disables. */
    void setEvictionHook(std::function<void(uint64_t)> hook)
    {
        evictionHook_ = std::move(hook);
    }

    // --- Fragmentation ---------------------------------------------

    /**
     * Pool-level internal fragmentation: fraction of *physical*
     * token capacity (each resident shared block counted once) not
     * backed by actual tokens. Shared blocks are full by
     * construction, so waste lives in private blocks; callers pass
     * the actual token total behind private reservations. Without
     * sharing this is the classic reserved-minus-actual ratio.
     */
    double fragmentation(size_t actual_private_tokens) const;

    /**
     * Per-request internal fragmentation: fraction of the request's
     * *held* capacity (private + fully-shared blocks — shared
     * capacity counted once per holder, which is the point: summing
     * this across holders double-counts physical blocks, so it
     * measures a request's own over-reservation, never pool waste).
     */
    double requestFragmentation(uint64_t request,
                                size_t actual_tokens) const;

    const KvMemoryStats &stats() const { return stats_; }

    /** Push the current pool level into the obs gauges (no-op
     *  without a context). Reserve/release already publish; this is
     *  for an explicit resync, e.g. after crash recovery. */
    void publishUsage();

  private:
    struct Holding
    {
        size_t privateBlocks = 0;
        std::vector<uint64_t> shared; ///< full chain hashes, in order
        uint64_t partial = 0;         ///< partial-match hash (0 = none)
    };

    /** Reference a resident block (refs 0 -> 1 leaves the
     *  evictable count). */
    void refShared(uint64_t hash);
    /** Drop one reference; the block stays resident. */
    void unrefShared(uint64_t hash);
    /** Reclaim the deterministically-chosen zero-ref resident
     *  block; false when none exists. */
    bool evictOneShared();
    /** Zero-ref residents minus those `match` would re-reference
     *  (they cannot double as eviction fodder for that admission). */
    size_t evictableFor(const PrefixMatch &match) const;

    size_t totalBlocks_;
    size_t blockTokens_;
    size_t usedBlocks_ = 0;
    size_t zeroRefShared_ = 0; ///< resident blocks with refs == 0
    std::map<uint64_t, Holding> held_;       ///< request -> holding
    std::map<uint64_t, SharedBlock> shared_; ///< hash -> block
    std::multimap<uint64_t, uint64_t> children_; ///< parent -> child
    std::function<void(uint64_t)> evictionHook_;
    KvMemoryStats stats_;
    obs::Gauge *gBlocksInUse_ = nullptr;
    obs::Gauge *gActiveRequests_ = nullptr;
    obs::Gauge *gSharedBlocks_ = nullptr;
    obs::Counter *cAllocFailures_ = nullptr;
    obs::Counter *cPrefixHits_ = nullptr;
    obs::Counter *cPrefixMisses_ = nullptr;
    obs::Counter *cCowCopies_ = nullptr;
    obs::Counter *cSharedEvictions_ = nullptr;
};

} // namespace runtime
} // namespace specinfer

#endif // SPECINFER_RUNTIME_KV_MEMORY_H
