/**
 * @file
 * Paged KV-cache memory accounting and admission control.
 *
 * The paper's introduction motivates speculation partly through KV
 * memory pressure: caching keys and values for long sequences
 * limits how many requests can be served in parallel. This module
 * models the block-granular KV memory pool of a modern serving
 * system (as popularized by vLLM's PagedAttention, cited as a
 * baseline in §6): requests reserve fixed-size token blocks as
 * their sequences grow, and the request manager admits a request
 * only when its worst-case footprint fits.
 */

#ifndef SPECINFER_RUNTIME_KV_MEMORY_H
#define SPECINFER_RUNTIME_KV_MEMORY_H

#include <cstddef>
#include <cstdint>
#include <map>

namespace specinfer {
namespace obs {
class Counter;
class Gauge;
class ObsContext;
}
namespace runtime {

/** Aggregate pool statistics. */
struct KvMemoryStats
{
    size_t peakUsedBlocks = 0;    ///< high-water mark
    size_t failedReservations = 0;///< reserve() calls that failed
    size_t totalReservations = 0; ///< successful reserve() calls
    /** release() calls for a request holding nothing (double
     *  release, or an id that never reserved). Well-defined no-ops,
     *  but counted: a nonzero value in a path that should release
     *  exactly once flags an accounting bug upstream. */
    size_t redundantReleases = 0;
};

/**
 * Block-granular KV memory pool shared by all requests of one
 * serving pipeline.
 *
 * A request's reservation is expressed in tokens and rounded up to
 * blocks; reservations only grow (sequences never shrink) until the
 * request releases everything at completion.
 */
class KvBlockAllocator
{
  public:
    /**
     * @param total_blocks Pool capacity in blocks.
     * @param block_tokens Tokens per block (vLLM default: 16).
     * @param obs Optional observability context (non-owning): the
     *        allocator keeps a blocks-in-use gauge and an
     *        allocation-failure counter live. Null = no-op.
     */
    KvBlockAllocator(size_t total_blocks, size_t block_tokens,
                     obs::ObsContext *obs = nullptr);

    size_t totalBlocks() const { return totalBlocks_; }
    size_t usedBlocks() const { return usedBlocks_; }
    size_t freeBlocks() const { return totalBlocks_ - usedBlocks_; }
    size_t blockTokens() const { return blockTokens_; }

    /** Blocks required to hold the given number of tokens. */
    size_t blocksFor(size_t tokens) const;

    /** True when a reservation of `tokens` for `request` would
     *  succeed (accounting for its current holding). */
    bool canReserve(uint64_t request, size_t tokens) const;

    /**
     * Grow request's reservation to cover `tokens` tokens.
     * @return false (and change nothing) when the pool is exhausted;
     *         shrinking requests is a no-op returning true.
     */
    bool reserve(uint64_t request, size_t tokens);

    /** Release all blocks held by the request. */
    void release(uint64_t request);

    /** Blocks currently held by the request (0 if unknown). */
    size_t requestBlocks(uint64_t request) const;

    /** Number of requests currently holding blocks. */
    size_t activeRequests() const { return held_.size(); }

    /**
     * Internal fragmentation: fraction of reserved token capacity
     * that is not backed by actual tokens, given the actual token
     * total (callers track actual tokens themselves).
     */
    double fragmentation(size_t actual_tokens) const;

    const KvMemoryStats &stats() const { return stats_; }

    /** Push the current pool level into the obs gauges (no-op
     *  without a context). Reserve/release already publish; this is
     *  for an explicit resync, e.g. after crash recovery. */
    void publishUsage();

  private:
    size_t totalBlocks_;
    size_t blockTokens_;
    size_t usedBlocks_ = 0;
    std::map<uint64_t, size_t> held_; ///< request -> blocks
    KvMemoryStats stats_;
    obs::Gauge *gBlocksInUse_ = nullptr;
    obs::Gauge *gActiveRequests_ = nullptr;
    obs::Counter *cAllocFailures_ = nullptr;
};

} // namespace runtime
} // namespace specinfer

#endif // SPECINFER_RUNTIME_KV_MEMORY_H
