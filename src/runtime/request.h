/**
 * @file
 * LLM serving request descriptors and results.
 */

#ifndef SPECINFER_RUNTIME_REQUEST_H
#define SPECINFER_RUNTIME_REQUEST_H

#include <cstdint>
#include <vector>

#include "core/spec_engine.h"

namespace specinfer {
namespace runtime {

/** Lifecycle of a request inside the request manager. */
enum class RequestStatus
{
    Pending,   ///< queued, not yet admitted to a batch
    Running,   ///< part of the active batch
    Finished,  ///< generation complete; result available
};

/** A serving request as submitted by a client. */
struct Request
{
    uint64_t id = 0;
    std::vector<int> prompt;
    /** Iteration at which the request was submitted. */
    size_t arrivalIteration = 0;
    /** Per-request generation budget; 0 uses the engine default. */
    size_t maxNewTokens = 0;

    /**
     * Deadline as an iteration budget: the request fails with
     * StopReason::Deadline once `deadlineIterations` scheduling
     * iterations have elapsed since arrival without it finishing
     * (0 = no deadline). Measured on the manager's iteration clock,
     * which injected straggler faults advance faster.
     */
    size_t deadlineIterations = 0;

    /** Times this request has been preempted (KV pressure). */
    size_t preemptionCount = 0;

    /** Earliest iteration at which a preempted request may be
     *  re-admitted (exponential backoff keeps a thrashing request
     *  from immediately re-stealing the memory it just lost). */
    size_t earliestRestart = 0;

    /** Wall-clock submit timestamp for tracing (transient: not
     *  journaled or snapshotted; 0 when observability is off). */
    uint64_t submitNanos = 0;
};

/** Why submit() refused a request (typed load shedding). */
enum class RejectReason
{
    None,          ///< accepted
    QueueFull,     ///< bounded pending queue is at capacity
    NeverFits,     ///< worst case exceeds the whole KV pool
    InvalidPrompt, ///< empty, or beyond the model's sequence budget
};

/** Printable reject reason. */
const char *rejectReasonName(RejectReason reason);

/**
 * Outcome of submit(): an accepted request's id, or a typed
 * rejection (id 0). Converts to the id so call sites that only
 * track ids keep working.
 */
struct SubmitResult
{
    uint64_t id = 0;
    RejectReason reject = RejectReason::None;

    bool accepted() const { return reject == RejectReason::None; }
    operator uint64_t() const { return id; }
};

/** Completed request with timing and speculation statistics. */
struct RequestResult
{
    uint64_t id = 0;
    std::vector<int> tokens;           ///< generated tokens
    core::SpecStats stats;
    core::SpecSession::StopReason stopReason =
        core::SpecSession::StopReason::None;
    size_t arrivalIteration = 0;
    size_t startIteration = 0;         ///< first iteration in a batch
    size_t finishIteration = 0;
    /** Times the request was preempted over its lifetime. */
    size_t preemptions = 0;

    /** Iterations spent queued before admission. */
    size_t queueIterations() const
    {
        return startIteration - arrivalIteration;
    }

    /** Iterations spent decoding. */
    size_t serviceIterations() const
    {
        return finishIteration - startIteration + 1;
    }
};

} // namespace runtime
} // namespace specinfer

#endif // SPECINFER_RUNTIME_REQUEST_H
