/**
 * @file
 * LLM serving request descriptors and results.
 */

#ifndef SPECINFER_RUNTIME_REQUEST_H
#define SPECINFER_RUNTIME_REQUEST_H

#include <cstdint>
#include <vector>

#include "core/spec_engine.h"

namespace specinfer {
namespace runtime {

/** Lifecycle of a request inside the request manager. */
enum class RequestStatus
{
    Pending,   ///< queued, not yet admitted to a batch
    Running,   ///< part of the active batch
    Finished,  ///< generation complete; result available
};

/**
 * QoS class of a request. Lower numeric value = more important.
 * Admission sheds Batch first under pressure, preemption victimizes
 * the lowest class first, and per-class token buckets meter ingress
 * independently so a Batch burst cannot starve Interactive traffic.
 */
enum class Priority : uint8_t
{
    Interactive = 0, ///< latency-sensitive; shed last, preempt last
    Standard = 1,    ///< default class
    Batch = 2,       ///< throughput traffic; first to shed or evict
};

/** Number of priority classes (array sizing). */
constexpr size_t kPriorityCount = 3;

/** Printable priority class name. */
const char *priorityName(Priority priority);

/** A serving request as submitted by a client. */
struct Request
{
    uint64_t id = 0;
    std::vector<int> prompt;
    /** Iteration at which the request was submitted. */
    size_t arrivalIteration = 0;
    /** Per-request generation budget; 0 uses the engine default. */
    size_t maxNewTokens = 0;

    /** QoS class (scheduling, shedding, and preemption order). */
    Priority priority = Priority::Standard;

    /**
     * Deadline as an iteration budget: the request fails with
     * StopReason::Deadline once `deadlineIterations` scheduling
     * iterations have elapsed since arrival without it finishing
     * (0 = no deadline). Measured on the manager's iteration clock,
     * which injected straggler faults advance faster.
     */
    size_t deadlineIterations = 0;

    /**
     * Absolute wall-clock deadline in nanoseconds on the manager's
     * injectable obs::Clock (0 = none). Complements the iteration
     * budget: iteration deadlines bound scheduling work, wall-clock
     * deadlines bound real latency (stalls included). Persisted in
     * the journal and snapshot so recovery replays expiries
     * identically — the recovered manager must run on a clock that
     * reproduces the original readings (tests inject ManualClock).
     */
    uint64_t deadlineNanos = 0;

    /** Times this request has been preempted (KV pressure). */
    size_t preemptionCount = 0;

    /** Earliest iteration at which a preempted request may be
     *  re-admitted (exponential backoff keeps a thrashing request
     *  from immediately re-stealing the memory it just lost). */
    size_t earliestRestart = 0;

    /** Wall-clock submit timestamp for tracing (transient: not
     *  journaled or snapshotted; 0 when observability is off). */
    uint64_t submitNanos = 0;
};

/** Why submit() refused a request (typed load shedding). */
enum class RejectReason
{
    None,          ///< accepted
    QueueFull,     ///< bounded pending queue is at capacity
    NeverFits,     ///< worst case exceeds the whole KV pool
    InvalidPrompt, ///< empty, or beyond the model's sequence budget
    Overloaded,    ///< class token bucket empty; retry after backoff
};

/** Printable reject reason. */
const char *rejectReasonName(RejectReason reason);

/**
 * Outcome of submit(): an accepted request's id, or a typed
 * rejection (id 0). Converts to the id so call sites that only
 * track ids keep working.
 */
struct SubmitResult
{
    uint64_t id = 0;
    RejectReason reject = RejectReason::None;

    /** For Overloaded rejects: iterations until the class token
     *  bucket refills enough to admit a request (retry hint). */
    uint64_t retryAfterIterations = 0;

    bool accepted() const { return reject == RejectReason::None; }
    operator uint64_t() const { return id; }
};

/** Completed request with timing and speculation statistics. */
struct RequestResult
{
    uint64_t id = 0;
    std::vector<int> tokens;           ///< generated tokens
    core::SpecStats stats;
    core::SpecSession::StopReason stopReason =
        core::SpecSession::StopReason::None;
    size_t arrivalIteration = 0;
    size_t startIteration = 0;         ///< first iteration in a batch
    size_t finishIteration = 0;
    /** QoS class the request ran under. */
    Priority priority = Priority::Standard;
    /** Times the request was preempted over its lifetime. */
    size_t preemptions = 0;

    /** Iterations spent queued before admission. */
    size_t queueIterations() const
    {
        return startIteration - arrivalIteration;
    }

    /** Iterations spent decoding. */
    size_t serviceIterations() const
    {
        return finishIteration - startIteration + 1;
    }
};

} // namespace runtime
} // namespace specinfer

#endif // SPECINFER_RUNTIME_REQUEST_H
