/**
 * @file
 * LLM serving request descriptors and results.
 */

#ifndef SPECINFER_RUNTIME_REQUEST_H
#define SPECINFER_RUNTIME_REQUEST_H

#include <cstdint>
#include <vector>

#include "core/spec_engine.h"

namespace specinfer {
namespace runtime {

/** Lifecycle of a request inside the request manager. */
enum class RequestStatus
{
    Pending,   ///< queued, not yet admitted to a batch
    Running,   ///< part of the active batch
    Finished,  ///< generation complete; result available
};

/** A serving request as submitted by a client. */
struct Request
{
    uint64_t id = 0;
    std::vector<int> prompt;
    /** Iteration at which the request was submitted. */
    size_t arrivalIteration = 0;
    /** Per-request generation budget; 0 uses the engine default. */
    size_t maxNewTokens = 0;
};

/** Completed request with timing and speculation statistics. */
struct RequestResult
{
    uint64_t id = 0;
    std::vector<int> tokens;           ///< generated tokens
    core::SpecStats stats;
    core::SpecSession::StopReason stopReason =
        core::SpecSession::StopReason::None;
    size_t arrivalIteration = 0;
    size_t startIteration = 0;         ///< first iteration in a batch
    size_t finishIteration = 0;

    /** Iterations spent queued before admission. */
    size_t queueIterations() const
    {
        return startIteration - arrivalIteration;
    }

    /** Iterations spent decoding. */
    size_t serviceIterations() const
    {
        return finishIteration - startIteration + 1;
    }
};

} // namespace runtime
} // namespace specinfer

#endif // SPECINFER_RUNTIME_REQUEST_H
