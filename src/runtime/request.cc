#include "runtime/request.h"

namespace specinfer {
namespace runtime {

const char *
rejectReasonName(RejectReason reason)
{
    switch (reason) {
      case RejectReason::None:
        return "none";
      case RejectReason::QueueFull:
        return "queue-full";
      case RejectReason::NeverFits:
        return "never-fits";
      case RejectReason::InvalidPrompt:
        return "invalid-prompt";
      case RejectReason::Overloaded:
        return "overloaded";
    }
    return "unknown";
}

const char *
priorityName(Priority priority)
{
    switch (priority) {
      case Priority::Interactive:
        return "interactive";
      case Priority::Standard:
        return "standard";
      case Priority::Batch:
        return "batch";
    }
    return "unknown";
}

} // namespace runtime
} // namespace specinfer
