// Request types are header-only; this file anchors the library.
#include "runtime/request.h"
