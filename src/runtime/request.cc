#include "runtime/request.h"

namespace specinfer {
namespace runtime {

const char *
rejectReasonName(RejectReason reason)
{
    switch (reason) {
      case RejectReason::None:
        return "none";
      case RejectReason::QueueFull:
        return "queue-full";
      case RejectReason::NeverFits:
        return "never-fits";
      case RejectReason::InvalidPrompt:
        return "invalid-prompt";
    }
    return "unknown";
}

} // namespace runtime
} // namespace specinfer
