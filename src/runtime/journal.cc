#include "runtime/journal.h"

#include <cstring>
#include <istream>
#include <ostream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "obs/obs.h"
#include "util/logging.h"

namespace specinfer {
namespace runtime {

namespace {

/** Table-driven CRC-32 (IEEE 802.3, reflected 0xEDB88320). */
struct Crc32Table
{
    uint32_t entries[256];

    Crc32Table()
    {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            entries[i] = c;
        }
    }
};

const Crc32Table &
crcTable()
{
    static const Crc32Table table;
    return table;
}

/** Little-endian append-only payload buffer. */
class ByteWriter
{
  public:
    template <typename T>
    void pod(T value)
    {
        const char *raw = reinterpret_cast<const char *>(&value);
        buf_.append(raw, sizeof(T));
    }

    template <typename T>
    void podVector(const std::vector<T> &v)
    {
        pod<uint64_t>(v.size());
        buf_.append(reinterpret_cast<const char *>(v.data()),
                    v.size() * sizeof(T));
    }

    const std::string &bytes() const { return buf_; }

  private:
    std::string buf_;
};

/**
 * Bounds-checked payload cursor. Reads past the end (a torn or
 * corrupt payload) flip ok() to false and return zeros instead of
 * aborting — journal damage is an expected condition, not a bug.
 */
class ByteReader
{
  public:
    explicit ByteReader(const std::string &buf) : buf_(buf) {}

    template <typename T>
    T pod()
    {
        T value{};
        if (pos_ + sizeof(T) > buf_.size()) {
            ok_ = false;
            return value;
        }
        std::memcpy(&value, buf_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return value;
    }

    template <typename T>
    std::vector<T> podVector()
    {
        uint64_t len = pod<uint64_t>();
        if (!ok_ || len > (buf_.size() - pos_) / sizeof(T)) {
            ok_ = false;
            return {};
        }
        std::vector<T> v(len);
        std::memcpy(v.data(), buf_.data() + pos_, len * sizeof(T));
        pos_ += len * sizeof(T);
        return v;
    }

    bool ok() const { return ok_; }
    bool exhausted() const { return pos_ == buf_.size(); }

  private:
    const std::string &buf_;
    size_t pos_ = 0;
    bool ok_ = true;
};

void
writeRng(ByteWriter &w, const util::RngState &state)
{
    for (uint64_t word : state.s)
        w.pod<uint64_t>(word);
    w.pod<uint8_t>(state.hasCachedNormal ? 1 : 0);
    w.pod<double>(state.cachedNormal);
}

util::RngState
readRng(ByteReader &r)
{
    util::RngState state;
    for (uint64_t &word : state.s)
        word = r.pod<uint64_t>();
    state.hasCachedNormal = r.pod<uint8_t>() != 0;
    state.cachedNormal = r.pod<double>();
    return state;
}

std::string
serializePayload(const JournalRecord &rec)
{
    ByteWriter w;
    w.pod<uint8_t>(static_cast<uint8_t>(rec.type));
    switch (rec.type) {
      case RecordType::Submit:
        w.pod<uint64_t>(rec.id);
        w.pod<uint64_t>(rec.arrivalIteration);
        w.pod<uint64_t>(rec.maxNewTokens);
        w.pod<uint64_t>(rec.deadlineIterations);
        w.pod<uint64_t>(rec.deadlineNanos);
        w.pod<uint8_t>(rec.priority);
        w.podVector<int>(rec.prompt);
        break;
      case RecordType::Step:
        w.pod<uint64_t>(rec.id);
        w.podVector<int>(rec.tokens);
        w.podVector<float>(rec.logProbs);
        w.pod<uint64_t>(rec.step.treeSize);
        w.pod<uint64_t>(rec.step.verifiedTokens);
        w.pod<uint64_t>(rec.step.llmChunkTokens);
        w.pod<uint64_t>(rec.step.ssmTokensDecoded);
        w.pod<uint8_t>(rec.step.prefill ? 1 : 0);
        w.pod<uint8_t>(rec.step.fallback ? 1 : 0);
        writeRng(w, rec.rngAfter);
        w.pod<uint8_t>(rec.sessionDone ? 1 : 0);
        w.pod<uint8_t>(rec.stopReason);
        break;
      case RecordType::Preempt:
        w.pod<uint64_t>(rec.id);
        w.pod<uint64_t>(rec.preemptionCount);
        w.pod<uint64_t>(rec.earliestRestart);
        break;
      case RecordType::Finish:
        w.pod<uint64_t>(rec.id);
        w.pod<uint8_t>(rec.stopReason);
        w.pod<uint64_t>(rec.arrivalIteration);
        w.pod<uint64_t>(rec.startIteration);
        w.pod<uint64_t>(rec.finishIteration);
        w.pod<uint64_t>(rec.preemptions);
        break;
      case RecordType::Iteration:
        w.pod<uint64_t>(rec.iteration);
        w.pod<uint8_t>(rec.iterDegraded);
        w.pod<uint8_t>(rec.iterSlow);
        w.pod<uint8_t>(rec.degrSpeculationDisabled);
        w.pod<uint64_t>(rec.degrConsecutiveFaults);
        w.pod<uint64_t>(rec.degrCleanIterations);
        w.pod<uint64_t>(rec.degrCurrentBackoff);
        w.pod<uint64_t>(rec.degrReenableIteration);
        w.pod<uint64_t>(rec.degrDisableEpisodes);
        break;
      case RecordType::Begin:
        w.pod<uint64_t>(rec.iteration);
        w.pod<uint64_t>(rec.iterNanos);
        break;
      case RecordType::Admit:
        w.pod<uint64_t>(rec.id);
        w.pod<uint64_t>(rec.adoptedTokens);
        break;
    }
    return w.bytes();
}

bool
parsePayload(const std::string &payload, JournalRecord &rec)
{
    ByteReader r(payload);
    uint8_t raw_type = r.pod<uint8_t>();
    if (!r.ok() || raw_type < 1 ||
        raw_type > static_cast<uint8_t>(RecordType::Admit))
        return false;
    rec = JournalRecord();
    rec.type = static_cast<RecordType>(raw_type);
    switch (rec.type) {
      case RecordType::Submit:
        rec.id = r.pod<uint64_t>();
        rec.arrivalIteration = r.pod<uint64_t>();
        rec.maxNewTokens = r.pod<uint64_t>();
        rec.deadlineIterations = r.pod<uint64_t>();
        rec.deadlineNanos = r.pod<uint64_t>();
        rec.priority = r.pod<uint8_t>();
        rec.prompt = r.podVector<int>();
        break;
      case RecordType::Step:
        rec.id = r.pod<uint64_t>();
        rec.tokens = r.podVector<int>();
        rec.logProbs = r.podVector<float>();
        rec.step.treeSize = r.pod<uint64_t>();
        rec.step.verifiedTokens = r.pod<uint64_t>();
        rec.step.llmChunkTokens = r.pod<uint64_t>();
        rec.step.ssmTokensDecoded = r.pod<uint64_t>();
        rec.step.prefill = r.pod<uint8_t>() != 0;
        rec.step.fallback = r.pod<uint8_t>() != 0;
        rec.rngAfter = readRng(r);
        rec.sessionDone = r.pod<uint8_t>() != 0;
        rec.stopReason = r.pod<uint8_t>();
        break;
      case RecordType::Preempt:
        rec.id = r.pod<uint64_t>();
        rec.preemptionCount = r.pod<uint64_t>();
        rec.earliestRestart = r.pod<uint64_t>();
        break;
      case RecordType::Finish:
        rec.id = r.pod<uint64_t>();
        rec.stopReason = r.pod<uint8_t>();
        rec.arrivalIteration = r.pod<uint64_t>();
        rec.startIteration = r.pod<uint64_t>();
        rec.finishIteration = r.pod<uint64_t>();
        rec.preemptions = r.pod<uint64_t>();
        break;
      case RecordType::Iteration:
        rec.iteration = r.pod<uint64_t>();
        rec.iterDegraded = r.pod<uint8_t>();
        rec.iterSlow = r.pod<uint8_t>();
        rec.degrSpeculationDisabled = r.pod<uint8_t>();
        rec.degrConsecutiveFaults = r.pod<uint64_t>();
        rec.degrCleanIterations = r.pod<uint64_t>();
        rec.degrCurrentBackoff = r.pod<uint64_t>();
        rec.degrReenableIteration = r.pod<uint64_t>();
        rec.degrDisableEpisodes = r.pod<uint64_t>();
        break;
      case RecordType::Begin:
        rec.iteration = r.pod<uint64_t>();
        rec.iterNanos = r.pod<uint64_t>();
        break;
      case RecordType::Admit:
        rec.id = r.pod<uint64_t>();
        rec.adoptedTokens = r.pod<uint64_t>();
        break;
    }
    // A valid payload is consumed exactly: trailing garbage means a
    // framing bug or corruption that happened to pass the CRC of a
    // different record — reject either way.
    return r.ok() && r.exhausted();
}

} // namespace

uint32_t
crc32(const void *data, size_t size)
{
    const uint8_t *bytes = static_cast<const uint8_t *>(data);
    const Crc32Table &table = crcTable();
    uint32_t c = 0xFFFFFFFFu;
    for (size_t i = 0; i < size; ++i)
        c = table.entries[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

const char *
recordTypeName(RecordType type)
{
    switch (type) {
      case RecordType::Submit:
        return "submit";
      case RecordType::Step:
        return "step";
      case RecordType::Preempt:
        return "preempt";
      case RecordType::Finish:
        return "finish";
      case RecordType::Iteration:
        return "iteration";
      case RecordType::Begin:
        return "begin";
      case RecordType::Admit:
        return "admit";
    }
    return "unknown";
}

JournalWriter::JournalWriter(std::ostream &out) : out_(&out)
{
}

void
JournalWriter::sync() const
{
    if (syncFd_ < 0)
        return;
#if defined(__linux__)
    ::fdatasync(syncFd_);
#elif defined(__unix__) || defined(__APPLE__)
    ::fsync(syncFd_);
#else
    return;
#endif
    if (obs::ObsContext *o = obs::globalObs())
        o->metrics().counter("journal_fsyncs")->inc();
}

void
JournalWriter::append(const JournalRecord &record)
{
    if (closed_)
        return;
    const std::string payload = serializePayload(record);
    const uint32_t len = static_cast<uint32_t>(payload.size());
    const uint32_t crc =
        crc32(payload.data(), payload.size());
    out_->write(reinterpret_cast<const char *>(&len), sizeof(len));
    out_->write(reinterpret_cast<const char *>(&crc), sizeof(crc));
    if (tearNext_) {
        // Simulated crash mid-append: half the payload reaches the
        // stream, then the "process" is gone.
        out_->write(payload.data(),
                    static_cast<std::streamsize>(payload.size() / 2));
        out_->flush();
        closed_ = true;
        return;
    }
    out_->write(payload.data(),
                static_cast<std::streamsize>(payload.size()));
    out_->flush();
    SPECINFER_CHECK(out_->good(), "journal append failed");
    bytes_ += sizeof(len) + sizeof(crc) + payload.size();
    // Journals are created by callers that never see an ObsContext
    // (tools and tests hand the manager a bare stream), so the
    // writer reports through the process-global context when one is
    // installed.
    if (obs::ObsContext *o = obs::globalObs()) {
        o->metrics().counter("journal_appends")->inc();
        o->metrics().gauge("journal_bytes_written")
            ->set(static_cast<int64_t>(bytes_));
    }
}

JournalReader::JournalReader(std::istream &in) : in_(&in)
{
}

bool
JournalReader::next(JournalRecord &record)
{
    if (done_)
        return false;
    // Clean EOF: no more bytes at a record boundary.
    if (in_->peek() == std::char_traits<char>::eof()) {
        done_ = true;
        return false;
    }
    uint32_t len = 0;
    uint32_t crc = 0;
    in_->read(reinterpret_cast<char *>(&len), sizeof(len));
    if (in_->gcount() != sizeof(len)) {
        done_ = tornTail_ = true;
        if (obs::ObsContext *o = obs::globalObs())
            o->metrics().counter("journal_torn_tails")->inc();
        return false;
    }
    in_->read(reinterpret_cast<char *>(&crc), sizeof(crc));
    if (in_->gcount() != sizeof(crc) || len > (1u << 28)) {
        done_ = tornTail_ = true;
        if (obs::ObsContext *o = obs::globalObs())
            o->metrics().counter("journal_torn_tails")->inc();
        return false;
    }
    std::string payload(len, '\0');
    in_->read(payload.data(), static_cast<std::streamsize>(len));
    if (static_cast<uint32_t>(in_->gcount()) != len ||
        crc32(payload.data(), payload.size()) != crc ||
        !parsePayload(payload, record)) {
        done_ = tornTail_ = true;
        if (obs::ObsContext *o = obs::globalObs())
            o->metrics().counter("journal_torn_tails")->inc();
        return false;
    }
    bytes_ += sizeof(len) + sizeof(crc) + len;
    if (obs::ObsContext *o = obs::globalObs())
        o->metrics().counter("journal_records_replayed")->inc();
    return true;
}

} // namespace runtime
} // namespace specinfer
