/**
 * @file
 * Write-ahead token journal for crash-safe serving.
 *
 * The RequestManager appends one record per scheduling event —
 * request accepted, one decode step committed (with the verified
 * tokens and the post-step sampler/RNG cursor), request preempted,
 * request finished, iteration committed — so that a crash at any
 * point loses at most the record being written. Recovery loads the
 * most recent snapshot and replays the journal tail on top of it
 * (RequestManager::recover), reconstructing the exact pre-crash
 * scheduling state; the KV caches rebuild lazily through the
 * engine's catch-up path, which is output-invariant.
 *
 * On-disk format: a bare stream of records, each framed as
 *
 *   u32 payloadLength | u32 crc32(payload) | payload bytes
 *
 * little-endian, no file header. The reader is truncation-tolerant
 * by design: a torn tail (short header, short payload, or CRC
 * mismatch — what a crash mid-append leaves behind) terminates the
 * stream cleanly at the last fully valid record, and
 * bytesConsumed() reports the valid prefix length so the caller can
 * truncate the file before resuming appends.
 *
 * Records deliberately carry *events*, not state: a Step record
 * holds the tokens the verifier committed and the RNG cursor after
 * the step, never model activations or KV rows. This keeps the
 * journal tiny (the snapshot holds the bulky state) and makes
 * replay a pure bookkeeping pass — no model execution.
 */

#ifndef SPECINFER_RUNTIME_JOURNAL_H
#define SPECINFER_RUNTIME_JOURNAL_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/spec_engine.h"
#include "util/rng.h"

namespace specinfer {
namespace runtime {

/** CRC-32 (IEEE 802.3 polynomial) over a byte range. */
uint32_t crc32(const void *data, size_t size);

/** Journal record kinds, in the order the manager emits them. */
enum class RecordType : uint8_t
{
    /** A request was accepted into the pending queue. */
    Submit = 1,
    /** One decode step committed for an active request. */
    Step = 2,
    /** An active request was preempted and requeued. */
    Preempt = 3,
    /** A request finished (normally or aborted). */
    Finish = 4,
    /** One scheduling iteration committed (clock + degradation). */
    Iteration = 5,
    /**
     * An iteration began: the iteration index and the wall-clock
     * reading every deadline decision inside it will use. Written
     * before any step, so a crash anywhere inside the iteration
     * leaves recovery the exact timestamp needed to *resume* the
     * half-journaled iteration (skipping already-replayed steps)
     * instead of re-running it one clock tick out of phase —
     * without this, wall-clock deadline expiries could land one
     * step off after a mid-iteration crash.
     */
    Begin = 6,
    /**
     * A pending request was admitted into a batch slot. Replay
     * re-admits exactly the crashed process's batch, so resuming a
     * half-journaled iteration never admits into slots that only
     * freed up mid-iteration (which would let a request start one
     * clock tick earlier than the uninterrupted run).
     */
    Admit = 7,
};

/** Printable record type name (logs and tests). */
const char *recordTypeName(RecordType type);

/**
 * One journal record. A flat union-of-fields struct: `type` selects
 * which fields are meaningful (listed per type below); the rest stay
 * default-initialized and are not serialized.
 */
struct JournalRecord
{
    RecordType type = RecordType::Submit;

    /** Request id (all types except Iteration). */
    uint64_t id = 0;

    // --- Submit ---------------------------------------------------
    uint64_t arrivalIteration = 0;
    uint64_t maxNewTokens = 0;
    uint64_t deadlineIterations = 0;
    /** Absolute wall-clock deadline in obs::Clock nanos (0 = none). */
    uint64_t deadlineNanos = 0;
    /** runtime::Priority, flattened. */
    uint8_t priority = 1;
    std::vector<int> prompt;

    // --- Step -----------------------------------------------------
    /** Tokens the verifier committed this step (possibly empty for
     *  a chunked-prefill iteration). */
    std::vector<int> tokens;
    std::vector<float> logProbs;
    core::StepRecord step;
    /** Sampler/RNG cursor *after* the step — replay jumps straight
     *  to it instead of recomputing the step. */
    util::RngState rngAfter;
    bool sessionDone = false;
    /** core::SpecSession::StopReason (Step and Finish). */
    uint8_t stopReason = 0;

    // --- Preempt --------------------------------------------------
    uint64_t preemptionCount = 0;
    uint64_t earliestRestart = 0;

    // --- Finish (tokens/stats are rebuilt from replayed Steps) ----
    uint64_t startIteration = 0;
    uint64_t finishIteration = 0;
    uint64_t preemptions = 0;

    // --- Iteration / Begin ----------------------------------------
    /** Manager iteration clock after the iteration committed
     *  (Iteration) or when it began (Begin). */
    uint64_t iteration = 0;
    /** Wall-clock reading (obs::Clock nanos) the iteration's
     *  deadline checks use (Begin). */
    uint64_t iterNanos = 0;
    /** KV rows resident right after admission — the prefix-store
     *  adoption level (Admit). The crashed process's store was warm
     *  with blocks a cold recovering store cannot adopt; replay
     *  re-hydrates to this level so the recovered session spends
     *  exactly as many prefill iterations as the live one did. */
    uint64_t adoptedTokens = 0;
    /** This iteration ran with speculation disabled. */
    uint8_t iterDegraded = 0;
    /** An injected straggler advanced the clock this iteration. */
    uint8_t iterSlow = 0;
    /** runtime::DegradationState, flattened (journal.h must not
     *  depend on request_manager.h). */
    uint8_t degrSpeculationDisabled = 0;
    uint64_t degrConsecutiveFaults = 0;
    uint64_t degrCleanIterations = 0;
    uint64_t degrCurrentBackoff = 0;
    uint64_t degrReenableIteration = 0;
    uint64_t degrDisableEpisodes = 0;
};

/**
 * Appends CRC-framed records to a stream. Not thread-safe: the
 * RequestManager journals from its single scheduling thread.
 */
class JournalWriter
{
  public:
    /** @param out Destination stream (non-owning; must outlive the
     *         writer). Appends start at the current position. */
    explicit JournalWriter(std::ostream &out);

    /** Append one record (no-op once closed()). */
    void append(const JournalRecord &record);

    /** Bytes of fully written records (excludes a torn tail). */
    uint64_t bytesWritten() const { return bytes_; }

    /**
     * Crash-simulation hook: the next append() writes the frame
     * header but only about half of the payload, then closes the
     * writer — exactly the torn record a process crash mid-append
     * leaves on disk. Subsequent appends are dropped.
     */
    void tearNextAppend() { tearNext_ = true; }

    /** True once a torn append has been simulated. */
    bool closed() const { return closed_; }

    /**
     * Durability hook (opt-in, see ServingConfig::journalFsync):
     * hand the writer a file descriptor open on the same file as
     * the output stream; sync() then issues fdatasync on it. The
     * stream is flushed per append, so the descriptor sees every
     * framed byte; without this the journal survives process
     * crashes (the kernel holds the pages) but not power loss.
     */
    void setSyncFd(int fd) { syncFd_ = fd; }

    /** fdatasync the journal file (no-op without setSyncFd). */
    void sync() const;

  private:
    std::ostream *out_;
    uint64_t bytes_ = 0;
    bool tearNext_ = false;
    bool closed_ = false;
    int syncFd_ = -1;
};

/**
 * Truncation-tolerant journal reader: yields records until clean
 * EOF or the first damaged frame (short header, short payload, CRC
 * mismatch, or unparseable payload), which it treats as the torn
 * tail of a crash — never an error.
 */
class JournalReader
{
  public:
    /** @param in Source stream (non-owning), positioned at the
     *         first record to read. */
    explicit JournalReader(std::istream &in);

    /** Read the next record into `record`.
     *  @return false at clean EOF or at a damaged tail (check
     *          tornTail() to distinguish). */
    bool next(JournalRecord &record);

    /** True when reading stopped at a damaged frame rather than
     *  clean EOF. */
    bool tornTail() const { return tornTail_; }

    /** Bytes of valid records consumed so far — the length callers
     *  should truncate a torn journal to before appending again. */
    uint64_t bytesConsumed() const { return bytes_; }

  private:
    std::istream *in_;
    uint64_t bytes_ = 0;
    bool tornTail_ = false;
    bool done_ = false;
};

} // namespace runtime
} // namespace specinfer

#endif // SPECINFER_RUNTIME_JOURNAL_H
