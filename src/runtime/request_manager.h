/**
 * @file
 * Request manager with Orca-style continuous batching (paper §5.1).
 *
 * Scheduling is at *iteration* granularity: every call to
 * runIteration() admits pending requests into the active batch (up
 * to maxBatchSize), runs one speculate+verify iteration for every
 * active request, and retires requests that finished — so new
 * requests start decoding without waiting for the current batch to
 * drain, and finished requests leave immediately.
 */

#ifndef SPECINFER_RUNTIME_REQUEST_MANAGER_H
#define SPECINFER_RUNTIME_REQUEST_MANAGER_H

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/spec_engine.h"
#include "runtime/kv_memory.h"
#include "runtime/request.h"

namespace specinfer {
namespace runtime {

/** Batch admission policy. */
enum class SchedulingPolicy
{
    /** Orca-style continuous batching (paper §5.1): requests join
     *  and leave the batch at iteration granularity. */
    Continuous,

    /** Request-level static batching, the pre-Orca baseline: a
     *  batch is formed when the engine is idle and no request joins
     *  until the whole batch drains. */
    Static,
};

/** How KV memory is reserved for admitted requests. */
enum class KvReservationPolicy
{
    /** Reserve the worst-case footprint (prompt + full generation
     *  budget + one token tree) at admission; never preempts but
     *  wastes capacity (internal over-reservation). */
    WorstCase,

    /** Reserve blocks on demand as sequences grow (vLLM-style
     *  paging); admits more requests but may have to preempt and
     *  restart the youngest request on pool exhaustion. */
    OnDemand,
};

/** Request manager configuration. */
struct ServingConfig
{
    /** Maximum number of requests decoded concurrently. */
    size_t maxBatchSize = 8;

    /** Admission policy. */
    SchedulingPolicy policy = SchedulingPolicy::Continuous;

    /** KV memory pool size in blocks; 0 disables memory-based
     *  admission control. */
    size_t kvPoolBlocks = 0;

    /** Tokens per KV block. */
    size_t kvBlockTokens = 16;

    /** Reservation policy when a pool is configured. */
    KvReservationPolicy kvPolicy = KvReservationPolicy::WorstCase;
};

/** Aggregate serving metrics. */
struct ServingStats
{
    size_t iterations = 0;
    size_t requestsSubmitted = 0;
    size_t requestsFinished = 0;
    size_t tokensGenerated = 0;
    /** Sum over iterations of the active batch size. */
    size_t requestIterations = 0;
    /** Requests preempted and restarted due to KV pool pressure. */
    size_t preemptions = 0;
    /** Active batch size of every iteration, in order (0 = idle
     *  tick); lets callers price each iteration through a hardware
     *  model. */
    std::vector<size_t> batchSizeTrace;

    double avgBatchSize() const
    {
        return iterations == 0
                   ? 0.0
                   : static_cast<double>(requestIterations) /
                         static_cast<double>(iterations);
    }
};

/**
 * Schedules requests onto a SpecEngine with continuous batching.
 * Single-threaded by design: one manager models one serving
 * pipeline, matching the paper's per-pipeline latency experiments.
 */
class RequestManager
{
  public:
    /**
     * @param engine Non-owning engine shared by all requests.
     * @param cfg Scheduling configuration.
     */
    RequestManager(const core::SpecEngine *engine, ServingConfig cfg);

    /**
     * Submit a request; returns its id.
     * @param max_new_tokens Per-request generation budget; 0 uses
     *        the engine default.
     */
    uint64_t submit(std::vector<int> prompt,
                    size_t max_new_tokens = 0);

    /** True while any request is pending or running. */
    bool busy() const;

    /**
     * One iteration-level scheduling step: admit, decode one
     * iteration for each active request, retire finished requests.
     */
    void runIteration();

    /** Drive iterations until no request is pending or running. */
    void runUntilDrained();

    size_t pendingCount() const { return pending_.size(); }
    size_t activeCount() const { return active_.size(); }
    size_t iterationCount() const { return stats_.iterations; }
    const ServingStats &stats() const { return stats_; }

    /** Results completed so far, in finish order. */
    const std::vector<RequestResult> &finished() const
    {
        return finished_;
    }

    /** Move out the finished results (clients draining output). */
    std::vector<RequestResult> takeFinished();

    /** KV memory pool, or nullptr when admission is unbounded. */
    const KvBlockAllocator *kvPool() const { return kvPool_.get(); }

  private:
    /** Worst-case cached tokens for a request over its lifetime. */
    size_t worstCaseTokens(const Request &req) const;

    static constexpr size_t kNoVictim = static_cast<size_t>(-1);

    /**
     * Preempt the latest-arrival active request that arrived after
     * `requester` (FCFS priority: a request may only steal memory
     * from strictly later arrivals, otherwise two requests could
     * evict each other forever). Releases the victim's memory and
     * requeues it for a fresh start.
     * @return the erased index, or kNoVictim if none.
     */
    size_t preemptLatestArrival(uint64_t requester);
    struct ActiveRequest
    {
        Request request;
        core::SpecSession session;
        size_t startIteration;
    };

    const core::SpecEngine *engine_;
    ServingConfig cfg_;
    uint64_t nextId_ = 1;
    std::deque<Request> pending_;
    std::vector<ActiveRequest> active_;
    std::vector<RequestResult> finished_;
    ServingStats stats_;
    std::unique_ptr<KvBlockAllocator> kvPool_;
};

} // namespace runtime
} // namespace specinfer

#endif // SPECINFER_RUNTIME_REQUEST_MANAGER_H
