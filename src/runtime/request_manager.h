/**
 * @file
 * Request manager with Orca-style continuous batching (paper §5.1).
 *
 * Scheduling is at *iteration* granularity: every call to
 * runIteration() admits pending requests into the active batch (up
 * to maxBatchSize), runs one speculate+verify iteration for every
 * active request, and retires requests that finished — so new
 * requests start decoding without waiting for the current batch to
 * drain, and finished requests leave immediately.
 */

#ifndef SPECINFER_RUNTIME_REQUEST_MANAGER_H
#define SPECINFER_RUNTIME_REQUEST_MANAGER_H

#include <cstddef>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "core/spec_engine.h"
#include "model/prefix_store.h"
#include "runtime/journal.h"
#include "runtime/kv_memory.h"
#include "runtime/request.h"

namespace specinfer {
namespace obs {
class HistogramMetric;
class ObsContext;
}
namespace runtime {

/** Batch admission policy. */
enum class SchedulingPolicy
{
    /** Orca-style continuous batching (paper §5.1): requests join
     *  and leave the batch at iteration granularity. */
    Continuous,

    /** Request-level static batching, the pre-Orca baseline: a
     *  batch is formed when the engine is idle and no request joins
     *  until the whole batch drains. */
    Static,
};

/** How KV memory is reserved for admitted requests. */
enum class KvReservationPolicy
{
    /** Reserve the worst-case footprint (prompt + full generation
     *  budget + one token tree) at admission; never preempts but
     *  wastes capacity (internal over-reservation). */
    WorstCase,

    /** Reserve blocks on demand as sequences grow (vLLM-style
     *  paging); admits more requests but may have to preempt and
     *  restart the youngest request on pool exhaustion. */
    OnDemand,
};

/** Request manager configuration. */
struct ServingConfig
{
    /** Maximum number of requests decoded concurrently. */
    size_t maxBatchSize = 8;

    /** Admission policy. */
    SchedulingPolicy policy = SchedulingPolicy::Continuous;

    /** KV memory pool size in blocks; 0 disables memory-based
     *  admission control. */
    size_t kvPoolBlocks = 0;

    /** Tokens per KV block. */
    size_t kvBlockTokens = 16;

    /** Reservation policy when a pool is configured. */
    KvReservationPolicy kvPolicy = KvReservationPolicy::WorstCase;

    /**
     * Prefix sharing: intern full prompt blocks in the KV pool so
     * requests with a common prefix (system prompt, RAG context)
     * hold one physical block many times, and adopt already-computed
     * KV rows at admission instead of re-running prefill. Purely an
     * occupancy/latency optimization — outputs stay bit-identical
     * (chunk-layout invariance). Requires a KV pool.
     */
    bool kvPrefixSharing = false;

    /**
     * Precision the serving engine's SSMs run at (raw
     * model::Precision value). Recorded in snapshots: crash recovery
     * replays the journal through the same engine the crashed
     * process used, and an SSM precision switch mid-recovery would
     * silently replay under different draft numerics. Greedy
     * verification makes final tokens independent of SSM precision,
     * but recover() still refuses the mismatch — recovery is defined
     * as reproducing the crashed process, not a near miss of it.
     */
    uint8_t ssmPrecision = 0;

    /**
     * Tensor-parallel degree the serving models run at (see
     * ModelConfig::tensorParallel), persisted into snapshots for the
     * same reason as ssmPrecision: the sharded forward is proven
     * bit-identical across degrees, but recovery is defined as
     * reproducing the crashed process's exact execution shape, so
     * recover() refuses a snapshot taken under a different degree
     * rather than relying on that proof at recovery time.
     */
    uint8_t tpDegree = 1;

    // --- Robustness / graceful-degradation knobs ------------------

    /** Bounded pending queue: submit() rejects with
     *  RejectReason::QueueFull beyond this depth (0 = unbounded). */
    size_t maxPendingRequests = 0;

    /** Deadline applied to requests submitted without one
     *  (iterations since arrival; 0 = no default deadline). */
    size_t defaultDeadlineIterations = 0;

    /** Preemption/retry budget: a request preempted more than this
     *  many times fails cleanly with StopReason::Preempted instead
     *  of retrying forever (0 = unlimited retries). */
    size_t maxPreemptions = 0;

    /** Cap on the exponential re-admission backoff applied after
     *  each preemption (iterations). */
    size_t preemptBackoffCap = 64;

    /**
     * Seed of the RNG that jitters the preemption re-admission
     * backoff. Deterministic backoff makes every preempted request
     * re-collide in lockstep (they all wait exactly 2^k and storm
     * the pool together); a seeded jitter of up to half the base
     * window de-synchronizes them while keeping every test and
     * journal replay reproducible from the seed.
     */
    uint64_t backoffJitterSeed = 0x6a177e5ULL;

    /** Disable speculation after this many consecutive iterations
     *  with an injected speculator fault (0 = never degrade). */
    size_t degradeAfterConsecutiveFaults = 3;

    /** Initial speculation-disable window (iterations); doubles on
     *  each repeated degradation up to degradeBackoffMax. */
    size_t degradeBackoffIterations = 8;

    /** Upper bound on the degradation backoff window. */
    size_t degradeBackoffMax = 256;

    /** Iteration-clock penalty applied when an injected straggler
     *  (FaultPoint::SlowIteration) fires: the clock advances this
     *  many extra ticks, consuming deadline budget. */
    size_t slowIterationPenalty = 4;

    // --- QoS / overload knobs -------------------------------------

    /**
     * Per-class token-bucket ingress, indexed by runtime::Priority.
     * A submission consumes one token from its class bucket; an
     * empty bucket is a typed RejectReason::Overloaded with a
     * retry-after hint. 0 = class unmetered (the default). Buckets
     * refill on the iteration clock, so bucket state is a pure
     * function of journaled events and recovery replays admissions
     * identically.
     */
    size_t classBucketCapacity[kPriorityCount] = {0, 0, 0};

    /** Refill cadence per class: one token every this many
     *  iterations (>= 1). */
    size_t classRefillEveryIterations[kPriorityCount] = {1, 1, 1};

    /**
     * Wall-clock deadline applied to requests submitted without one,
     * relative to the submit-time clock reading (nanoseconds on the
     * injectable obs::Clock; 0 = none). Requires an ObsContext —
     * without a clock source wall-clock deadlines are inert.
     */
    uint64_t defaultWallDeadlineNanos = 0;

    /**
     * Opt-in durability: fdatasync the journal at iteration commit
     * (and snapshot) boundaries. Without it the write-ahead journal
     * survives process crashes — the kernel page cache holds every
     * flushed byte — but not power loss (DESIGN.md §5d). Requires
     * the journal writer to carry a sync fd (JournalWriter::
     * setSyncFd); a writer without one makes this a no-op.
     */
    bool journalFsync = false;

    /** Record per-iteration batch sizes in
     *  ServingStats::batchSizeTrace. Off by default: the trace
     *  grows linearly with iterations, which long-running soaks
     *  cannot afford. */
    bool captureBatchTrace = false;

    /**
     * Observability context (non-owning). Resolved against the
     * process-global context at construction (obs::resolveObs); when
     * both are null the manager runs fully uninstrumented — no
     * clock reads, no atomics — and its outputs are bit-identical
     * to earlier PRs.
     */
    obs::ObsContext *obs = nullptr;
};

/** Aggregate serving metrics. */
struct ServingStats
{
    size_t iterations = 0;
    size_t requestsSubmitted = 0;
    size_t requestsFinished = 0;
    size_t tokensGenerated = 0;
    /** Sum over iterations of the active batch size. */
    size_t requestIterations = 0;
    /** Requests preempted and restarted due to KV pool pressure. */
    size_t preemptions = 0;
    /** Active batch size of every iteration, in order (0 = idle
     *  tick); lets callers price each iteration through a hardware
     *  model. Only recorded when ServingConfig::captureBatchTrace
     *  is set — the trace grows without bound otherwise. */
    std::vector<size_t> batchSizeTrace;

    // --- Failure / degradation observability ----------------------

    /** submit() rejections: bounded queue at capacity. */
    size_t rejectedQueueFull = 0;
    /** submit() rejections: request can never be served (pool too
     *  small or invalid prompt). */
    size_t rejectedNeverFits = 0;
    /** Accepted-then-dropped pending requests (StopReason::Shed):
     *  a preemption requeue overflowed the bounded queue. */
    size_t shedRequests = 0;
    /** Requests that failed their iteration deadline. */
    size_t deadlineExpiries = 0;
    /** Client cancellations honored. */
    size_t cancellations = 0;
    /** Decode steps degraded to incremental by an injected
     *  speculator/verifier fault. */
    size_t fallbackSteps = 0;
    /** Iterations run with speculation disabled by the degradation
     *  ladder. */
    size_t degradedIterations = 0;
    /** Re-admissions of previously preempted requests. */
    size_t preemptionRetries = 0;
    /** Requests that exhausted their preemption budget and failed
     *  with StopReason::Preempted. */
    size_t preemptionAborts = 0;
    /** Injected straggler iterations (clock jumped forward). */
    size_t slowIterations = 0;
    /** submit() rejections: class token bucket empty (overload). */
    size_t rejectedOverloaded = 0;
    /** Shed requests broken down by QoS class (indexed by
     *  runtime::Priority); sums to shedRequests. */
    size_t shedByClass[kPriorityCount] = {0, 0, 0};

    double avgBatchSize() const
    {
        return iterations == 0
                   ? 0.0
                   : static_cast<double>(requestIterations) /
                         static_cast<double>(iterations);
    }
};

/**
 * Speculation-health state for the degradation ladder: repeated
 * consecutive SSM faults disable speculation for a backoff window
 * (doubling on each repeat); every iteration then decodes
 * incrementally — slower, never wrong. A fault-free stretch of the
 * same length resets the backoff to its initial value.
 */
struct DegradationState
{
    /** Speculation currently disabled (engine steps run with
     *  allow_speculation = false). */
    bool speculationDisabled = false;
    /** Consecutive speculation-enabled iterations with a fault. */
    size_t consecutiveFaults = 0;
    /** Consecutive speculation-enabled iterations without one. */
    size_t cleanIterations = 0;
    /** Current disable window; doubles each repeated degradation. */
    size_t currentBackoff = 0;
    /** Iteration at which speculation re-enables. */
    size_t reenableIteration = 0;
    /** Times the ladder has disabled speculation. */
    size_t disableEpisodes = 0;
};

/**
 * Schedules requests onto a SpecEngine with continuous batching.
 * Single-threaded by design: one manager models one serving
 * pipeline, matching the paper's per-pipeline latency experiments.
 */
class RequestManager
{
  public:
    /**
     * @param engine Non-owning engine shared by all requests.
     * @param cfg Scheduling configuration.
     */
    RequestManager(const core::SpecEngine *engine, ServingConfig cfg);

    /**
     * Submit a request.
     *
     * Never aborts on a bad or unserveable request: load shedding
     * and unsatisfiable requests come back as a typed rejection
     * (SubmitResult::reject) so clients can retry elsewhere.
     *
     * @param max_new_tokens Per-request generation budget; 0 uses
     *        the engine default.
     * @param deadline_iterations Iteration-budget deadline; 0 uses
     *        ServingConfig::defaultDeadlineIterations (which may
     *        itself be 0 = no deadline).
     * @param priority QoS class: scheduling, shedding, and
     *        preemption order (Interactive > Standard > Batch).
     * @param deadline_nanos Absolute wall-clock deadline on the
     *        manager's obs::Clock (0 applies
     *        ServingConfig::defaultWallDeadlineNanos relative to
     *        now, when a clock is available).
     */
    SubmitResult submit(std::vector<int> prompt,
                        size_t max_new_tokens = 0,
                        size_t deadline_iterations = 0,
                        Priority priority = Priority::Standard,
                        uint64_t deadline_nanos = 0);

    /**
     * Cancel a pending or active request. The request finishes
     * immediately with StopReason::Cancelled and whatever tokens it
     * had generated (a prefix of its full output).
     * @return false when the id is unknown (already finished).
     */
    bool cancel(uint64_t id);

    /** True while any request is pending or running. */
    bool busy() const;

    /**
     * One iteration-level scheduling step: admit, decode one
     * iteration for each active request, retire finished requests.
     */
    void runIteration();

    /** Drive iterations until no request is pending or running. */
    void runUntilDrained();

    size_t pendingCount() const { return pending_.size(); }
    size_t activeCount() const { return active_.size(); }
    size_t iterationCount() const { return stats_.iterations; }
    const ServingStats &stats() const { return stats_; }

    /** Speculation-health state of the degradation ladder. */
    const DegradationState &degradation() const { return degr_; }

    /**
     * Externally push the degradation ladder: disable speculation
     * for `backoff_iterations` starting now. The daemon's watchdog
     * calls this on an iteration stall — a stall is evidence the
     * speculative path is sick even when no SSM fault fired, and
     * incremental decoding is the safe gear. Extends (never
     * shortens) an active disable window.
     */
    void forceDegrade(size_t backoff_iterations);

    /** Results completed so far, in finish order. */
    const std::vector<RequestResult> &finished() const
    {
        return finished_;
    }

    /** Move out the finished results (clients draining output). */
    std::vector<RequestResult> takeFinished();

    // --- Streaming / daemon integration ---------------------------

    /**
     * Per-step token stream observer: called once per committed
     * decode step that produced tokens, with the request id, the
     * index of the first new generated token, and the new tokens
     * themselves — the hook the serving daemon streams responses
     * from. Fires only for live decode steps, never during journal
     * replay (a recovering daemon re-streams from generatedSoFar()
     * instead, which keeps the stream idempotent). Pass nullptr to
     * detach.
     */
    using StepObserver = std::function<void(
        uint64_t id, size_t start, const std::vector<int> &tokens)>;
    void setStepObserver(StepObserver observer)
    {
        stepObserver_ = std::move(observer);
    }

    /** Where a request currently lives. */
    enum class RequestPhase
    {
        Unknown,  ///< never submitted or already taken out
        Pending,  ///< queued
        Active,   ///< decoding
        Finished, ///< result available in finished()
    };
    RequestPhase phase(uint64_t id) const;

    /** Generated tokens so far for an active or finished request
     *  (empty for pending/unknown) — the resume path for clients
     *  reconnecting after a daemon restart. */
    std::vector<int> generatedSoFar(uint64_t id) const;

    /** Identity of every pending or active request (a restarting
     *  daemon re-records its recovered in-flight stream). */
    struct InflightInfo
    {
        uint64_t id = 0;
        std::vector<int> prompt;
        size_t maxNewTokens = 0;
        Priority priority = Priority::Standard;
    };
    std::vector<InflightInfo> inflight() const;

    /**
     * Sync ServingStats, queue depths, and thread-pool job counts
     * into the serving_* / pool_* gauges. Gauge-sync (rather than
     * event-time increments) keeps metrics idempotent under journal
     * replay: a recovered manager republishes the same values an
     * uninterrupted run would. Called automatically at the end of
     * every runIteration() and recover(); safe to call any time.
     * No-op without an ObsContext.
     */
    void publishMetrics();

    /** KV memory pool, or nullptr when admission is unbounded. */
    const KvBlockAllocator *kvPool() const { return kvPool_.get(); }

    /**
     * Pool-level internal fragmentation right now: the fraction of
     * physical block capacity (each shared block counted once) not
     * backed by materialized tokens. Tokens covered by a request's
     * fully-shared blocks are excluded from its private total —
     * partial-match tokens are not, since their positions live in
     * private blocks. 0 without a pool.
     */
    double kvFragmentation() const;

    /** Prefix-block payload store, or nullptr when sharing is off. */
    const model::PrefixKvStore *prefixStore() const
    {
        return prefixStore_.get();
    }

    // --- Crash safety: write-ahead journal + snapshot/recover -----

    /**
     * Attach a write-ahead journal (non-owning; nullptr detaches).
     * Once attached, every scheduling event — accepted submit,
     * committed decode step (verified tokens + post-step RNG
     * cursor), preemption, finish, committed iteration — is
     * appended before the manager moves on, and the Crash fault
     * point becomes live inside runIteration() (see crashed()).
     */
    void attachJournal(JournalWriter *journal) { journal_ = journal; }

    /**
     * Serialize the full scheduling state: iteration clock, stats,
     * degradation ladder, pending queue, active requests with their
     * complete sessions (sequence, RNG, KV caches), per-request KV
     * pool holdings, and finished results. The snapshot records the
     * attached journal's current byte offset, so recover() replays
     * exactly the journal tail written after this snapshot.
     */
    void writeSnapshot(std::ostream &out) const;

    /**
     * Rebuild pre-crash state on a *fresh* manager (same engine and
     * config as the crashed one — the caller's responsibility):
     * load the snapshot (if any), then replay the journal tail on
     * top of it. Replay is pure bookkeeping — journaled steps are
     * re-applied token-for-token with their stored RNG cursors, and
     * KV caches rebuild lazily through the engine's catch-up path,
     * so recovered outputs are bit-identical to an uninterrupted
     * run. FCFS order, verified prefixes, preemption/backoff state,
     * and KV pool holdings are all preserved; a torn tail record
     * (crash mid-append) is discarded, and the lost step simply
     * recomputes deterministically.
     *
     * Attach the post-recovery journal *before* calling recover()
     * (or snapshot immediately after): results retired during
     * replay are journaled to the attached writer.
     *
     * @param snapshot Snapshot stream, or nullptr to replay the
     *        whole journal from an empty manager.
     * @param journal Journal stream positioned at its first record,
     *        or nullptr to restore the snapshot alone.
     * @return Length in bytes of the valid journal prefix (skip +
     *         replayed records); callers resuming appends into the
     *         same file should truncate it to this length first.
     */
    uint64_t recover(std::istream *snapshot, std::istream *journal);

    /** True once an injected Crash fault halted runIteration();
     *  the manager must be abandoned and rebuilt via recover(). */
    bool crashed() const { return crashed_; }

  private:
    /** Worst-case cached tokens for a request over its lifetime. */
    size_t worstCaseTokens(const Request &req) const;

    /** Tokens the active reservation policy requires at admission:
     *  the full lifetime footprint under WorstCase, one iteration's
     *  worth (prompt + tree + bonus) under OnDemand. */
    size_t admissionTokens(const Request &req) const;

    /** Admit the request's KV holding (shared chain + private
     *  blocks) and wire prefix adoption into the session. The
     *  caller must have checked canAdmit; aborts on failure. Returns
     *  the partial-match hash to release at first write (0 = none). */
    uint64_t admitKv(const Request &req, core::SpecSession *session);

    static constexpr size_t kNoVictim = static_cast<size_t>(-1);

    struct ActiveRequest
    {
        Request request;
        core::SpecSession session;
        size_t startIteration;
        /** Partial-match block awaiting copy-on-write: released after
         *  the request's first step writes past the divergence
         *  point (0 = none pending). */
        uint64_t cowPending = 0;
        /** Replay bookkeeping: this request already stepped in the
         *  half-journaled iteration being resumed, so the resuming
         *  runIteration must skip it (set by Step replay, cleared at
         *  iteration commit). */
        bool steppedThisIteration = false;
    };

    /** Release a pending copy-on-write reference after the
     *  request's first step wrote past its divergence point. */
    void settleCow(ActiveRequest &ar);

    /**
     * Preempt an active request to free memory for `requester`.
     * Victim order: lowest QoS class first (Batch before Standard
     * before Interactive), latest arrival within a class. A
     * requester may only steal from a strictly lower class, or from
     * a strictly later arrival in its own class — a total order on
     * (class, id) that keeps preemption livelock-free, exactly as
     * the plain FCFS id order did before classes existed. Releases
     * the victim's memory and requeues it for a fresh start — or,
     * when the victim's preemption budget is exhausted, fails it
     * with StopReason::Preempted.
     * @return the erased index, or kNoVictim if none.
     */
    size_t preemptLowestClass(uint64_t requester_id,
                              Priority requester_priority);

    /** Reserve KV blocks, consulting the KvAlloc fault point; an
     *  injected failure is indistinguishable from pool pressure. */
    bool tryReserve(uint64_t id, size_t tokens);

    /** Jittered exponential re-admission backoff for the given
     *  preemption count: base 2^count capped at preemptBackoffCap,
     *  plus a seeded uniform jitter in [0, base/2]. Consumes one
     *  draw from backoffRng_ (replay consumes the same draw). */
    size_t jitteredBackoff(size_t preemption_count);

    /** Requeue a preempted request with exponential backoff, or
     *  fail it cleanly when its retry budget is exhausted; sheds
     *  the newest pending request if the requeue overflows a
     *  bounded queue. */
    void requeuePreempted(Request &&req,
                          const core::SpecSession *session);

    /** Record a terminal result for a request the engine did not
     *  finish (deadline, cancel, shed, preemption budget). */
    void finishAborted(Request &&req,
                       const core::SpecSession *session,
                       size_t start_iteration,
                       core::SpecSession::StopReason reason);

    /** Fail pending requests whose deadline (iteration budget or
     *  wall clock) already expired. */
    void expirePendingDeadlines();

    /** True when the request's iteration-budget or wall-clock
     *  deadline has passed (wall clock read once per iteration
     *  into nowNanos_). */
    bool deadlineExpired(const Request &req) const;

    /** Refill the class bucket up to the current iteration (lazy,
     *  idempotent: advances in whole refill periods only). */
    void refillBucket(size_t cls);

    /** Check the class has an ingress token; on an empty bucket
     *  returns false with the iterations until the next token in
     *  `retry_after`. Unmetered classes always admit. Does not
     *  consume — only accepted (journaled) submits mutate bucket
     *  state, or replay would diverge. */
    bool bucketAdmit(Priority priority, uint64_t &retry_after);

    /** Consume one ingress token (accepted submit, live or
     *  replayed). */
    void consumeBucketToken(Priority priority);

    /** Shed victim among pending_: lowest class first, latest
     *  arrival within a class; pending_.size() when none. */
    size_t shedVictimIndex() const;

    /** Shed pending_[index] with StopReason::Shed (class stats). */
    void shedPending(size_t index);

    /** Update the degradation ladder after one stepping sweep. */
    void updateDegradation(bool speculation_ran, bool fault_seen);

    /** Journal one committed decode step of active_[index] (the
     *  tokens/log-probs appended beyond the given pre-step sizes). */
    void journalStep(size_t index, size_t seq_before,
                     size_t log_probs_before);

    /** Journal a Finish record mirroring a RequestResult. */
    void journalFinish(const RequestResult &res);

    /** Journal the end-of-iteration commit (clock + degradation). */
    void journalIteration(bool degraded, bool slow);

    /** Journal the start of an iteration (index + wall-clock read;
     *  see RecordType::Begin). */
    void journalBegin();

    /** Journal the admission of a pending request into a batch
     *  slot, with its post-admission KV residency (the prefix
     *  adoption level; see RecordType::Admit). */
    void journalAdmit(uint64_t id, uint64_t adopted_tokens);

    /** Apply one replayed journal record (recover() body). */
    void applyRecord(const JournalRecord &rec);

    /** Record an injected crash: serving_crashes counter plus a
     *  scheduler-track instant annotation. */
    void noteCrash();

    const core::SpecEngine *engine_;
    ServingConfig cfg_;
    obs::ObsContext *obs_;             ///< resolved; may be null
    obs::HistogramMetric *hIterMillis_ = nullptr;
    /** Shared-pool job count at construction; pool_jobs_dispatched
     *  publishes the delta (jobs during this serving run). */
    uint64_t poolJobsBaseline_ = 0;
    uint64_t nextId_ = 1;
    std::deque<Request> pending_;
    std::vector<ActiveRequest> active_;
    std::vector<RequestResult> finished_;
    ServingStats stats_;
    DegradationState degr_;
    std::unique_ptr<KvBlockAllocator> kvPool_;
    /** Payload rows for shared prefix blocks (see model/
     *  prefix_store.h); non-null iff pool + kvPrefixSharing. */
    std::unique_ptr<model::PrefixKvStore> prefixStore_;
    JournalWriter *journal_ = nullptr;
    bool crashed_ = false;
    StepObserver stepObserver_;
    /** Preemption-backoff jitter source; state is snapshotted and
     *  replay re-draws, so recovery stays bit-identical. */
    util::Rng backoffRng_;
    /** Per-class ingress token buckets (see classBucketCapacity).
     *  Snapshotted; replayed Submits re-consume, so recovery sees
     *  the same admission decisions. */
    uint64_t bucketLevel_[kPriorityCount] = {0, 0, 0};
    uint64_t bucketRefillIteration_[kPriorityCount] = {0, 0, 0};
    /** Wall-clock reading cached once per iteration (and at
     *  submit); all wall-deadline decisions compare against this,
     *  never a fresh read, so a ManualClock drives them exactly. */
    uint64_t nowNanos_ = 0;
    /**
     * Recovery replayed a Begin record without its matching
     * Iteration commit: the crash landed mid-iteration. The next
     * runIteration *resumes* that iteration — it reuses the
     * journaled nowNanos_ instead of reading the clock, skips
     * admission (Admit replay already rebuilt the batch), and skips
     * sessions whose Step records were replayed — so deadline
     * decisions land at exactly the same session progress as the
     * uninterrupted run.
     */
    bool resumeIteration_ = false;
    /** Replayed step evidence for the half-iteration being resumed,
     *  so the resumed commit feeds updateDegradation the same
     *  signals the crashed process saw. */
    bool resumeSpecRan_ = false;
    bool resumeFaultSeen_ = false;
};

} // namespace runtime
} // namespace specinfer

#endif // SPECINFER_RUNTIME_REQUEST_MANAGER_H
