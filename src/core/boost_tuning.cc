#include "core/boost_tuning.h"

#include <algorithm>

#include "model/sampler.h"
#include "util/logging.h"

namespace specinfer {
namespace core {

std::vector<BoostSample>
buildBoostCorpus(const model::Transformer &llm,
                 const std::vector<std::vector<int>> &prompts,
                 size_t tokens_per_prompt)
{
    SPECINFER_CHECK(tokens_per_prompt > 0, "empty corpus requested");
    std::vector<BoostSample> corpus;
    corpus.reserve(prompts.size() * tokens_per_prompt);
    for (const std::vector<int> &prompt : prompts) {
        SPECINFER_CHECK(!prompt.empty(), "empty prompt in corpus");
        model::KvCache cache = llm.makeCache();
        tensor::Tensor logits = llm.forward(
            model::DecodeChunk::sequence(prompt), cache);
        std::vector<int> context = prompt;
        const float *row = logits.row(prompt.size() - 1);
        for (size_t g = 0; g < tokens_per_prompt; ++g) {
            int token =
                model::greedyToken(row, llm.config().vocabSize);
            corpus.push_back({context, token});
            if (context.size() + 2 >= llm.config().maxSeqLen)
                break;
            context.push_back(token);
            logits = llm.forward(model::DecodeChunk::single(token),
                                 cache);
            row = logits.row(0);
        }
    }
    return corpus;
}

std::vector<std::vector<bool>>
agreementMatrix(
    const std::vector<const model::Transformer *> &candidates,
    const std::vector<BoostSample> &corpus)
{
    SPECINFER_CHECK(!candidates.empty(), "no candidate SSMs");
    std::vector<std::vector<bool>> agrees(
        candidates.size(), std::vector<bool>(corpus.size(), false));
    for (size_t c = 0; c < candidates.size(); ++c) {
        const model::Transformer &ssm = *candidates[c];
        for (size_t s = 0; s < corpus.size(); ++s) {
            // Contexts grow by one token between consecutive
            // samples of the same prompt, but correctness over a
            // mixed corpus is simpler with fresh caches; corpora
            // are small (selection is offline).
            model::KvCache cache = ssm.makeCache();
            tensor::Tensor logits = ssm.forward(
                model::DecodeChunk::sequence(corpus[s].context),
                cache);
            int token = model::greedyToken(
                logits.row(corpus[s].context.size() - 1),
                ssm.config().vocabSize);
            agrees[c][s] = token == corpus[s].llmToken;
        }
    }
    return agrees;
}

BoostResult
boostSelect(const std::vector<std::vector<bool>> &agrees,
            const BoostConfig &cfg)
{
    SPECINFER_CHECK(!agrees.empty(), "no candidates to select from");
    SPECINFER_CHECK(cfg.poolSize >= 1, "pool must hold >= 1 SSM");
    const size_t n_samples = agrees[0].size();
    SPECINFER_CHECK(n_samples > 0, "empty corpus");
    for (const std::vector<bool> &row : agrees)
        SPECINFER_CHECK(row.size() == n_samples,
                        "ragged agreement matrix");

    BoostResult result;
    // Single-candidate baseline for the ablation report.
    size_t best_single = 0;
    for (const std::vector<bool> &row : agrees) {
        size_t hits = static_cast<size_t>(
            std::count(row.begin(), row.end(), true));
        best_single = std::max(best_single, hits);
    }
    result.bestSingleCoverage =
        static_cast<double>(best_single) /
        static_cast<double>(n_samples);

    std::vector<bool> covered(n_samples, false);
    std::vector<bool> used(agrees.size(), false);
    const size_t rounds = std::min(cfg.poolSize, agrees.size());
    for (size_t round = 0; round < rounds; ++round) {
        size_t best = agrees.size();
        size_t best_gain = 0;
        for (size_t c = 0; c < agrees.size(); ++c) {
            if (used[c])
                continue;
            size_t gain = 0;
            for (size_t s = 0; s < n_samples; ++s) {
                if (!agrees[c][s])
                    continue;
                if (cfg.filterCovered && covered[s])
                    continue; // marked sample: filtered out
                ++gain;
            }
            if (best == agrees.size() || gain > best_gain) {
                best = c;
                best_gain = gain;
            }
        }
        SPECINFER_CHECK(best < agrees.size(), "selection failed");
        used[best] = true;
        result.selected.push_back(best);
        for (size_t s = 0; s < n_samples; ++s)
            if (agrees[best][s])
                covered[s] = true;
    }

    size_t total_covered = static_cast<size_t>(
        std::count(covered.begin(), covered.end(), true));
    result.aggregateCoverage = static_cast<double>(total_covered) /
                               static_cast<double>(n_samples);
    return result;
}

} // namespace core
} // namespace specinfer
