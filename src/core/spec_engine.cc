#include "core/spec_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

#include "model/prefix_store.h"
#include "model/serialization.h"
#include "obs/obs.h"
#include "util/fault.h"
#include "util/hash.h"
#include "util/logging.h"

namespace specinfer {
namespace core {

namespace {

/** Accepted speculation depth per decode step, bucketed per depth
 *  so the exposition yields an acceptance-rate-by-depth curve. */
obs::HistogramMetric *
acceptDepthHistogram(obs::ObsContext *o)
{
    return o->metrics().histogram(
        "engine_accept_depth",
        {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0});
}

} // namespace

EngineConfig
EngineConfig::greedyDefault()
{
    EngineConfig cfg;
    cfg.spec.expansion = ExpansionConfig::paperDefault();
    cfg.spec.mode = SpeculationMode::TopK;
    cfg.spec.ssmSampling.temperature = 1.0f;
    cfg.llmSampling.temperature = 0.0f;
    cfg.verify = VerifyMode::Greedy;
    return cfg;
}

EngineConfig
EngineConfig::stochasticDefault(float temperature)
{
    EngineConfig cfg;
    cfg.spec.expansion = ExpansionConfig::paperDefault();
    cfg.spec.mode = SpeculationMode::Sampled;
    // Proposals are drawn from a mildly flattened SSM distribution;
    // MSS preserves the LLM distribution for any proposal q, and a
    // flatter q decorrelates residual rounds, improving multi-
    // candidate acceptance (calibrated against paper Table 1).
    cfg.spec.ssmSampling.temperature = 1.3f * temperature;
    cfg.llmSampling.temperature = temperature;
    cfg.verify = VerifyMode::MultiStepSampling;
    return cfg;
}

size_t
SpecStats::totalGenerated() const
{
    size_t total = 0;
    for (const StepRecord &s : steps)
        total += s.verifiedTokens;
    return total;
}

size_t
SpecStats::totalLlmTokens() const
{
    size_t total = 0;
    for (const StepRecord &s : steps)
        total += s.llmChunkTokens;
    return total;
}

size_t
SpecStats::totalSsmTokens() const
{
    size_t total = 0;
    for (const StepRecord &s : steps)
        total += s.ssmTokensDecoded;
    return total;
}

size_t
SpecStats::decodeSteps() const
{
    size_t total = 0;
    for (const StepRecord &s : steps)
        if (!s.prefill)
            ++total;
    return total;
}

size_t
SpecStats::fallbackSteps() const
{
    size_t total = 0;
    for (const StepRecord &s : steps)
        if (s.fallback)
            ++total;
    return total;
}

double
SpecStats::avgVerifiedPerStep() const
{
    const size_t decode = decodeSteps();
    if (decode == 0)
        return 0.0;
    return static_cast<double>(totalGenerated()) /
           static_cast<double>(decode);
}

SpecEngine::SpecEngine(const model::Transformer *llm,
                       std::vector<const model::Transformer *> ssms,
                       EngineConfig cfg)
    : llm_(llm),
      verifier_(cfg.verify, cfg.llmSampling),
      cfg_(cfg),
      obs_(obs::resolveObs(cfg.obs))
{
    SPECINFER_CHECK(llm_ != nullptr, "null LLM");
    cfg_.spec.expansion.validate();
    const bool incremental = cfg_.spec.expansion.steps() == 0;
    if (!incremental) {
        SPECINFER_CHECK(!ssms.empty(),
                        "speculative mode requires at least one SSM");
        for (const model::Transformer *ssm : ssms) {
            SPECINFER_CHECK(ssm != nullptr, "null SSM");
            SPECINFER_CHECK(ssm->config().vocabSize ==
                            llm_->config().vocabSize,
                            "SSM and LLM vocabularies must match");
        }
        speculator_ = std::make_unique<Speculator>(std::move(ssms),
                                                   cfg_.spec);
    }
    // Room for the sequence plus one in-flight token tree; a merged
    // tree can hold up to one budget's worth of nodes per SSM.
    const size_t pool = speculator_ ? speculator_->ssmCount() : 1;
    treeBudget_ = cfg_.spec.nodeBudget() * pool;
    cacheCapacity_ = llm_->config().maxSeqLen + treeBudget_ + 2;
}

SpecSession
SpecEngine::makeSession(std::vector<int> prompt,
                        uint64_t request_seed,
                        size_t max_new_tokens) const
{
    return SpecSession(this, std::move(prompt),
                       cfg_.seed ^ (request_seed * 0x9e3779b9ULL),
                       max_new_tokens == 0 ? cfg_.maxNewTokens
                                           : max_new_tokens,
                       request_seed);
}

GenerationResult
SpecEngine::generate(const std::vector<int> &prompt,
                     uint64_t request_seed,
                     size_t max_new_tokens) const
{
    SpecSession session =
        makeSession(prompt, request_seed, max_new_tokens);
    while (!session.done())
        session.step();
    GenerationResult res;
    res.tokens = session.generated();
    res.logProbs = session.logProbs();
    res.stats = session.stats();
    return res;
}

SpecSession::SpecSession(const SpecEngine *engine,
                         std::vector<int> prompt,
                         uint64_t request_seed, size_t max_new_tokens,
                         uint64_t track)
    : engine_(engine),
      seq_(std::move(prompt)),
      promptLen_(seq_.size()),
      maxNewTokens_(max_new_tokens),
      llmCache_(engine->llm_->makeCache(engine->cacheCapacity_)),
      rng_(request_seed),
      track_(track)
{
    SPECINFER_CHECK(!seq_.empty(), "empty prompt");
    SPECINFER_CHECK(seq_.size() + 2 < engine->llm_->config().maxSeqLen,
                    "prompt does not fit in the sequence budget");
    if (engine_->speculator_)
        ssmCaches_ = engine_->speculator_->makeCaches(
            engine_->cacheCapacity_);
}

std::vector<int>
SpecSession::applyStopSequences(std::vector<int> appended)
{
    const auto &stops = engine_->cfg_.stopSequences;
    if (stops.empty() || appended.size() == 0)
        return appended;
    // Scan each position where a match could newly end: matches may
    // straddle the boundary between already-generated tokens and
    // this step's appended ones.
    const size_t gen_before = seq_.size() - promptLen_;
    for (size_t i = 0; i < appended.size(); ++i) {
        const size_t end = gen_before + i + 1; // generated length
        for (const std::vector<int> &stop : stops) {
            if (stop.empty() || stop.size() > end)
                continue;
            bool match = true;
            for (size_t j = 0; j < stop.size() && match; ++j) {
                size_t pos = end - stop.size() + j; // generated idx
                int tok = pos < gen_before
                              ? seq_[promptLen_ + pos]
                              : appended[pos - gen_before];
                match = tok == stop[j];
            }
            if (match) {
                appended.resize(i + 1);
                stopReason_ = StopReason::StopSequence;
                done_ = true;
                return appended;
            }
        }
    }
    return appended;
}

void
SpecSession::enablePrefixSharing(model::PrefixKvStore *store)
{
    SPECINFER_CHECK(store != nullptr, "null prefix store");
    SPECINFER_CHECK(store->layers() == llmCache_.layers() &&
                        store->kvDim() == llmCache_.kvDim(),
                    "prefix store does not match the LLM geometry");
    prefixStore_ = store;
    promptHashes_.clear();
    const size_t bt = store->blockTokens();
    uint64_t chain = util::kHashChainSeed;
    for (size_t at = 0; (at + 1) * bt <= promptLen_; ++at) {
        chain = util::hashTokenBlock(chain, seq_.data() + at * bt, bt);
        promptHashes_.push_back(chain);
    }
}

size_t
SpecSession::adoptPrefix(const std::vector<uint64_t> &full_hashes,
                         uint64_t partial_hash, size_t partial_tokens)
{
    SPECINFER_CHECK(prefixStore_ != nullptr,
                    "adoptPrefix without enablePrefixSharing");
    SPECINFER_CHECK(llmCache_.length() == 0,
                    "adoptPrefix after prefill started");
    SPECINFER_CHECK(full_hashes.size() <= promptHashes_.size(),
                    "more shared blocks than the prompt has");
    const size_t bt = prefixStore_->blockTokens();
    // step() needs at least the tree root uncached.
    const size_t cap = promptLen_ - 1;
    size_t adopted = 0;
    bool contiguous = true;
    for (size_t k = 0; k < full_hashes.size() && contiguous; ++k) {
        SPECINFER_CHECK(full_hashes[k] == promptHashes_[k],
                        "adopted block does not match the prompt");
        const size_t rows = std::min(bt, cap - adopted);
        if (rows == 0)
            break;
        const size_t got =
            prefixStore_->adoptInto(full_hashes[k], rows, &llmCache_);
        adopted += got;
        // A short (capped) adoption still counts as contiguous up to
        // the rows taken; a cold block ends adoption here.
        contiguous = got == rows && rows == bt;
    }
    // The partial block extends the match immediately after the
    // contiguous full-block chain; adopting it needs every one of
    // those blocks warm and uncapped.
    if (contiguous && partial_hash != 0 && partial_tokens > 0 &&
        adopted == full_hashes.size() * bt) {
        const size_t rows =
            std::min(partial_tokens, cap - adopted);
        adopted += prefixStore_->adoptInto(partial_hash, rows,
                                           &llmCache_);
    }
    publishedBlocks_ = llmCache_.length() / bt;
    if (adopted > 0 && engine_->obs_ != nullptr)
        engine_->obs_->metrics()
            .counter("engine_prefill_skipped_tokens")
            ->inc(adopted);
    return adopted;
}

void
SpecSession::publishPromptBlocks()
{
    if (prefixStore_ == nullptr)
        return;
    const size_t bt = prefixStore_->blockTokens();
    const size_t resident =
        std::min(llmCache_.length(), promptLen_) / bt;
    for (size_t k = publishedBlocks_;
         k < resident && k < promptHashes_.size(); ++k)
        prefixStore_->fill(promptHashes_[k], llmCache_, k * bt);
    publishedBlocks_ = std::max(
        publishedBlocks_, std::min(resident, promptHashes_.size()));
}

std::vector<int>
SpecSession::generated() const
{
    return std::vector<int>(seq_.begin() +
                            static_cast<ptrdiff_t>(promptLen_),
                            seq_.end());
}

namespace {

// Session snapshot framing (version 1). RngState is written field
// by field (never as a raw struct) so padding bytes can't leak into
// the format.
constexpr uint32_t kSessionVersion = 1;

void
writeRngState(std::ostream &out, const util::RngState &state)
{
    for (uint64_t word : state.s)
        model::io::writePod<uint64_t>(out, word);
    model::io::writePod<uint8_t>(out, state.hasCachedNormal ? 1 : 0);
    model::io::writePod<double>(out, state.cachedNormal);
}

util::RngState
readRngState(std::istream &in)
{
    util::RngState state;
    for (uint64_t &word : state.s)
        word = model::io::readPod<uint64_t>(in);
    state.hasCachedNormal = model::io::readPod<uint8_t>(in) != 0;
    state.cachedNormal = model::io::readPod<double>(in);
    return state;
}

void
writeStepRecord(std::ostream &out, const StepRecord &record)
{
    model::io::writePod<uint64_t>(out, record.treeSize);
    model::io::writePod<uint64_t>(out, record.verifiedTokens);
    model::io::writePod<uint64_t>(out, record.llmChunkTokens);
    model::io::writePod<uint64_t>(out, record.ssmTokensDecoded);
    model::io::writePod<uint8_t>(out, record.prefill ? 1 : 0);
    model::io::writePod<uint8_t>(out, record.fallback ? 1 : 0);
}

StepRecord
readStepRecord(std::istream &in)
{
    StepRecord record;
    record.treeSize = model::io::readPod<uint64_t>(in);
    record.verifiedTokens = model::io::readPod<uint64_t>(in);
    record.llmChunkTokens = model::io::readPod<uint64_t>(in);
    record.ssmTokensDecoded = model::io::readPod<uint64_t>(in);
    record.prefill = model::io::readPod<uint8_t>(in) != 0;
    record.fallback = model::io::readPod<uint8_t>(in) != 0;
    return record;
}

} // namespace

void
SpecSession::save(std::ostream &out) const
{
    using model::io::writePod;
    writePod<uint32_t>(out, kSessionVersion);
    writePod<uint64_t>(out, promptLen_);
    model::io::writePodVector<int>(out, seq_);
    writePod<uint64_t>(out, maxNewTokens_);
    model::io::writePodVector<float>(out, logProbs_);
    writeRngState(out, rng_.state());
    writePod<uint8_t>(out, done_ ? 1 : 0);
    writePod<uint8_t>(out, static_cast<uint8_t>(stopReason_));
    writePod<uint64_t>(out, stats_.steps.size());
    for (const StepRecord &record : stats_.steps)
        writeStepRecord(out, record);
    model::saveKvCache(out, llmCache_);
    writePod<uint64_t>(out, ssmCaches_.size());
    for (const model::KvCache &cache : ssmCaches_)
        model::saveKvCache(out, cache);
    SPECINFER_CHECK(out.good(), "session write failed");
}

void
SpecSession::restoreStep(const std::vector<int> &tokens,
                         const std::vector<float> &log_probs,
                         const StepRecord &record,
                         const util::RngState &rng_after, bool done,
                         StopReason stop_reason)
{
    SPECINFER_CHECK(!done_, "restoreStep on a finished session");
    seq_.insert(seq_.end(), tokens.begin(), tokens.end());
    logProbs_.insert(logProbs_.end(), log_probs.begin(),
                     log_probs.end());
    stats_.steps.push_back(record);
    rng_.setState(rng_after);
    done_ = done;
    stopReason_ = stop_reason;
}

void
SpecSession::hydrateKv(size_t target_len)
{
    SPECINFER_CHECK(target_len <= seq_.size(),
                    "hydration target beyond the sequence");
    if (target_len <= llmCache_.length())
        return;
    std::vector<int> part(
        seq_.begin() + static_cast<ptrdiff_t>(llmCache_.length()),
        seq_.begin() + static_cast<ptrdiff_t>(target_len));
    engine_->llm_->forward(model::DecodeChunk::sequence(part),
                           llmCache_);
    publishPromptBlocks();
}

SpecSession
SpecEngine::loadSession(std::istream &in) const
{
    using model::io::readPod;
    uint32_t version = readPod<uint32_t>(in);
    SPECINFER_CHECK(version == kSessionVersion,
                    "unsupported session version " << version);
    uint64_t prompt_len = readPod<uint64_t>(in);
    std::vector<int> seq = model::io::readPodVector<int>(in);
    SPECINFER_CHECK(prompt_len > 0 && prompt_len <= seq.size(),
                    "corrupt session prompt length");
    uint64_t max_new = readPod<uint64_t>(in);

    // Reconstruct through the normal constructor (prompt checks,
    // cache shells), then overwrite the mutable decoding state.
    SpecSession session(
        this,
        std::vector<int>(seq.begin(),
                         seq.begin() +
                             static_cast<ptrdiff_t>(prompt_len)),
        0, max_new, 0);
    session.seq_ = std::move(seq);
    session.logProbs_ = model::io::readPodVector<float>(in);
    session.rng_.setState(readRngState(in));
    session.done_ = readPod<uint8_t>(in) != 0;
    session.stopReason_ =
        static_cast<SpecSession::StopReason>(readPod<uint8_t>(in));
    uint64_t n_steps = readPod<uint64_t>(in);
    SPECINFER_CHECK(n_steps < (1ull << 32),
                    "implausible session step count");
    session.stats_.steps.clear();
    session.stats_.steps.reserve(n_steps);
    for (uint64_t i = 0; i < n_steps; ++i)
        session.stats_.steps.push_back(readStepRecord(in));

    model::KvCache llm_cache = model::loadKvCache(in);
    SPECINFER_CHECK(llm_cache.layers() == llm_->config().nLayers &&
                    llm_cache.kvDim() == session.llmCache_.kvDim() &&
                    llm_cache.capacity() == cacheCapacity_,
                    "session KV cache does not match this engine");
    session.llmCache_ = std::move(llm_cache);

    uint64_t n_ssm = readPod<uint64_t>(in);
    SPECINFER_CHECK(n_ssm == session.ssmCaches_.size(),
                    "session SSM cache count does not match engine");
    for (uint64_t i = 0; i < n_ssm; ++i) {
        model::KvCache cache = model::loadKvCache(in);
        SPECINFER_CHECK(
            cache.layers() == session.ssmCaches_[i].layers() &&
                cache.kvDim() == session.ssmCaches_[i].kvDim() &&
                cache.capacity() ==
                    session.ssmCaches_[i].capacity(),
            "session SSM cache does not match this engine");
        session.ssmCaches_[i] = std::move(cache);
    }
    return session;
}

void
SpecSession::step(bool allow_speculation)
{
    SPECINFER_CHECK(!done_, "step() on a finished session");
    const model::Transformer &llm = *engine_->llm_;
    const EngineConfig &cfg = engine_->cfg_;
    obs::ObsContext *o = engine_->obs_;
    // Spans are gated on the tracer so a metrics-only context never
    // reads the clock on the decode path.
    obs::Tracer *tr = (o != nullptr && o->tracer().enabled())
                          ? &o->tracer()
                          : nullptr;

    // 0. Chunked prefill: if more uncached tokens remain than the
    // per-iteration cap allows, absorb one plain chunk and return
    // without speculating (keeping at least the final token
    // uncached for the next iteration's tree root).
    if (cfg.maxPrefillChunk > 0) {
        const size_t uncached = seq_.size() - llmCache_.length();
        if (uncached > cfg.maxPrefillChunk + 1) {
            std::vector<int> part(
                seq_.begin() +
                    static_cast<ptrdiff_t>(llmCache_.length()),
                seq_.begin() +
                    static_cast<ptrdiff_t>(llmCache_.length() +
                                           cfg.maxPrefillChunk));
            const uint64_t t0 = tr != nullptr ? tr->nowNanos() : 0;
            llm.forward(model::DecodeChunk::sequence(part),
                        llmCache_);
            if (tr != nullptr)
                tr->span(track_, "engine", "prefill", t0,
                         tr->nowNanos(),
                         {{"tokens",
                           static_cast<int64_t>(part.size())}});
            if (o != nullptr)
                o->metrics().counter("engine_prefill_chunks")->inc();
            StepRecord prefill;
            prefill.llmChunkTokens = part.size();
            prefill.prefill = true;
            stats_.steps.push_back(prefill);
            publishPromptBlocks();
            return;
        }
    }

    // 1. Speculate a token tree rooted at the last verified token.
    // An injected SSM fault (a crashed/slow speculator worker) or a
    // runtime-disabled speculator degrades this step to a root-only
    // tree: the decode/verify path below then behaves exactly like
    // incremental decoding and still emits at least one token.
    // Skipped steps are safe for the SSM caches — speculate()
    // catches caches up from any verified prefix.
    StepRecord record;
    TokenTree tree(seq_.back());
    if (engine_->speculator_ && allow_speculation) {
        if (util::faultAt(util::FaultPoint::SsmStep)) {
            record.fallback = true;
        } else {
            const uint64_t t0 = tr != nullptr ? tr->nowNanos() : 0;
            SpeculationCost cost;
            tree = engine_->speculator_->speculate(seq_, ssmCaches_,
                                                   rng_, &cost);
            record.ssmTokensDecoded = cost.ssmTokensDecoded;
            if (tr != nullptr)
                tr->span(track_, "engine", "speculate", t0,
                         tr->nowNanos(),
                         {{"tree", static_cast<int64_t>(
                                       tree.speculatedCount())},
                          {"ssm_tokens",
                           static_cast<int64_t>(
                               cost.ssmTokensDecoded)}});
        }
    }
    record.treeSize = tree.speculatedCount();

    // 2. Tree-based parallel decoding: catch-up tokens (verified but
    // not yet cached, ending with the root) plus the speculated
    // nodes, as one chunk.
    const size_t cached = llmCache_.length();
    SPECINFER_CHECK(cached < seq_.size(), "cache/sequence mismatch");
    const size_t catch_up = seq_.size() - cached; // includes root
    model::DecodeChunk chunk;
    chunk.tokens.reserve(catch_up + tree.speculatedCount());
    chunk.parents.reserve(catch_up + tree.speculatedCount());
    for (size_t i = 0; i < catch_up; ++i) {
        chunk.tokens.push_back(seq_[cached + i]);
        chunk.parents.push_back(static_cast<int32_t>(i) - 1);
    }
    const int32_t offset = static_cast<int32_t>(catch_up) - 1;
    for (size_t n = 1; n < tree.size(); ++n) {
        const TreeNode &node = tree.node(static_cast<NodeId>(n));
        chunk.tokens.push_back(node.token);
        chunk.parents.push_back(node.parent + offset);
    }
    const size_t base = llmCache_.length();
    const uint64_t t_decode = tr != nullptr ? tr->nowNanos() : 0;
    tensor::Tensor chunk_logits = llm.forward(chunk, llmCache_);
    if (tr != nullptr)
        tr->span(track_, "engine", "tree_decode", t_decode,
                 tr->nowNanos(),
                 {{"chunk", static_cast<int64_t>(chunk.size())}});
    record.llmChunkTokens = chunk.size();

    // Re-index logits by tree node id (root = catch-up row offset).
    tensor::Tensor node_logits(tree.size(), chunk_logits.cols());
    for (size_t n = 0; n < tree.size(); ++n)
        std::memcpy(node_logits.row(n),
                    chunk_logits.row(static_cast<size_t>(offset) + n),
                    chunk_logits.cols() * sizeof(float));

    // 3. Verify. An injected verifier fault discards the speculated
    // tree and re-verifies a root-only tree on the already-computed
    // root logits — equivalent to rejecting every speculated node,
    // so the step degrades to incremental output instead of
    // aborting. Only consulted when there is a tree to lose.
    VerifyResult verdict;
    const uint64_t t_verify = tr != nullptr ? tr->nowNanos() : 0;
    if (tree.speculatedCount() > 0 &&
        util::faultAt(util::FaultPoint::Verify)) {
        record.fallback = true;
        TokenTree root_only(seq_.back());
        tensor::Tensor root_logits(1, node_logits.cols());
        std::memcpy(root_logits.row(0), node_logits.row(0),
                    node_logits.cols() * sizeof(float));
        verdict = engine_->verifier_.verify(root_only, root_logits,
                                            rng_);
    } else {
        verdict = engine_->verifier_.verify(tree, node_logits, rng_);
    }
    if (tr != nullptr)
        tr->span(track_, "engine", "verify", t_verify, tr->nowNanos(),
                 {{"accepted", static_cast<int64_t>(
                                   verdict.acceptedNodes.size())},
                  {"emitted", static_cast<int64_t>(
                                  verdict.tokens.size())}});

    // Respect the generation budget and EOS.
    std::vector<int> appended = verdict.tokens;
    const size_t already = seq_.size() - promptLen_;
    if (already + appended.size() > maxNewTokens_) {
        appended.resize(maxNewTokens_ - already);
        stopReason_ = StopReason::MaxTokens;
        done_ = true;
    }
    if (cfg.stopAtEos) {
        for (size_t i = 0; i < appended.size(); ++i) {
            if (appended[i] == llm.config().eosToken) {
                appended.resize(i + 1);
                stopReason_ = StopReason::Eos;
                done_ = true;
                break;
            }
        }
    }
    appended = applyStopSequences(std::move(appended));
    SPECINFER_CHECK(!appended.empty() || done_,
                    "verification produced no tokens");

    // Per-token LLM log-probabilities: token i of the verdict is
    // emitted from the distribution at the i-th node on the walk
    // (root, then each accepted node).
    {
        model::SamplingParams unit;
        unit.temperature = 1.0f;
        NodeId dist_node = TokenTree::kRoot;
        for (size_t i = 0; i < appended.size(); ++i) {
            std::vector<float> p = model::logitsToProbs(
                node_logits.row(static_cast<size_t>(dist_node)),
                node_logits.cols(), unit);
            logProbs_.push_back(std::log(std::max(
                p[static_cast<size_t>(appended[i])], 1.0e-30f)));
            if (i < verdict.acceptedNodes.size())
                dist_node = verdict.acceptedNodes[i];
        }
    }
    seq_.insert(seq_.end(), appended.begin(), appended.end());
    record.verifiedTokens = appended.size();
    stats_.steps.push_back(record);

    if (o != nullptr) {
        // Accepted = tokens drawn from accepted tree nodes; anything
        // beyond that is the bonus token from the last distribution.
        const size_t accepted = std::min(
            appended.size(), verdict.acceptedNodes.size());
        obs::MetricsRegistry &reg = o->metrics();
        reg.counter("engine_tokens_proposed")->inc(record.treeSize);
        reg.counter("engine_tokens_verified")->inc(appended.size());
        reg.counter("engine_tokens_accepted")->inc(accepted);
        reg.counter("engine_bonus_tokens")
            ->inc(appended.size() - accepted);
        reg.counter("engine_ssm_tokens")
            ->inc(record.ssmTokensDecoded);
        if (record.fallback) {
            reg.counter("engine_fallback_steps")->inc();
            if (tr != nullptr)
                tr->instant(track_, "engine", "fallback",
                            tr->nowNanos());
        }
        if (record.treeSize > 0)
            acceptDepthHistogram(o)->observe(
                static_cast<double>(accepted));
    }

    // 4. KV-cache compaction: keep the prefix, the catch-up tokens
    // (including the root), and the accepted nodes that survived the
    // budget cut. Kept accepted tokens = appended minus the bonus.
    size_t kept_accepted =
        appended.size() > 0 &&
        appended.size() == verdict.tokens.size()
            ? verdict.acceptedNodes.size()
            : std::min(appended.size(), verdict.acceptedNodes.size());
    std::vector<size_t> keep;
    keep.reserve(base + catch_up + kept_accepted);
    for (size_t s = 0; s < base + catch_up; ++s)
        keep.push_back(s);
    for (size_t i = 0; i < kept_accepted; ++i)
        keep.push_back(base + static_cast<size_t>(offset) +
                       static_cast<size_t>(verdict.acceptedNodes[i]));
    llmCache_.keepRows(keep);
    publishPromptBlocks();

    if (done_)
        return;
    if (seq_.size() - promptLen_ >= maxNewTokens_) {
        stopReason_ = StopReason::MaxTokens;
        done_ = true;
        return;
    }
    // Stop before the next tree could overflow the sequence budget.
    const size_t next_peak = seq_.size() + engine_->treeBudget_ + 2;
    if (next_peak >= llm.config().maxSeqLen) {
        stopReason_ = StopReason::CapacityLimit;
        done_ = true;
    }
}

/** True when `generated` ends with one of the stop sequences. */
static bool
endsWithStopSequence(const std::vector<int> &generated,
                     const std::vector<std::vector<int>> &stops)
{
    for (const std::vector<int> &stop : stops) {
        if (stop.empty() || stop.size() > generated.size())
            continue;
        if (std::equal(stop.begin(), stop.end(),
                       generated.end() -
                           static_cast<ptrdiff_t>(stop.size())))
            return true;
    }
    return false;
}

GenerationResult
incrementalGenerate(const model::Transformer &llm,
                    const std::vector<int> &prompt,
                    const model::SamplingParams &params,
                    size_t max_new_tokens, util::Rng &rng,
                    bool stop_at_eos,
                    const std::vector<std::vector<int>> &stop_sequences)
{
    SPECINFER_CHECK(!prompt.empty(), "empty prompt");
    GenerationResult res;
    model::KvCache cache = llm.makeCache();
    tensor::Tensor logits = llm.forward(
        model::DecodeChunk::sequence(prompt), cache);
    const float *last = logits.row(prompt.size() - 1);
    model::SamplingParams unit;
    unit.temperature = 1.0f;
    for (size_t i = 0; i < max_new_tokens; ++i) {
        int token = model::sampleToken(last, llm.config().vocabSize,
                                       params, rng);
        res.tokens.push_back(token);
        std::vector<float> p = model::logitsToProbs(
            last, llm.config().vocabSize, unit);
        res.logProbs.push_back(std::log(std::max(
            p[static_cast<size_t>(token)], 1.0e-30f)));
        StepRecord record;
        record.verifiedTokens = 1;
        record.llmChunkTokens = 1;
        res.stats.steps.push_back(record);
        if (endsWithStopSequence(res.tokens, stop_sequences))
            break;
        if (stop_at_eos && token == llm.config().eosToken)
            break;
        if (prompt.size() + res.tokens.size() + 1 >=
            llm.config().maxSeqLen)
            break;
        logits = llm.forward(model::DecodeChunk::single(token), cache);
        last = logits.row(0);
    }
    return res;
}

} // namespace core
} // namespace specinfer
