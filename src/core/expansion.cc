#include "core/expansion.h"

#include <sstream>

#include "util/logging.h"

namespace specinfer {
namespace core {

size_t
ExpansionConfig::maxNodes() const
{
    size_t total = 0;
    size_t frontier = 1;
    for (size_t k : widths) {
        frontier *= k;
        total += frontier;
    }
    return total;
}

ExpansionConfig
ExpansionConfig::paperDefault()
{
    return {{1, 1, 3, 1, 1, 1, 1, 1}};
}

ExpansionConfig
ExpansionConfig::widthAtThird(size_t k, size_t len)
{
    SPECINFER_CHECK(len >= 3, "widthAtThird needs at least 3 steps");
    ExpansionConfig cfg;
    cfg.widths.assign(len, 1);
    cfg.widths[2] = k;
    return cfg;
}

ExpansionConfig
ExpansionConfig::uniform(size_t k, size_t len)
{
    ExpansionConfig cfg;
    cfg.widths.assign(len, k);
    return cfg;
}

ExpansionConfig
ExpansionConfig::none()
{
    return {};
}

std::string
ExpansionConfig::toString() const
{
    std::ostringstream oss;
    oss << "<";
    for (size_t i = 0; i < widths.size(); ++i) {
        if (i)
            oss << ",";
        oss << widths[i];
    }
    oss << ">";
    return oss.str();
}

ExpansionConfig
ExpansionConfig::parse(const std::string &text)
{
    std::string body = text;
    if (!body.empty() && body.front() == '<' && body.back() == '>')
        body = body.substr(1, body.size() - 2);
    ExpansionConfig cfg;
    size_t pos = 0;
    while (pos < body.size()) {
        size_t comma = body.find(',', pos);
        if (comma == std::string::npos)
            comma = body.size();
        const std::string piece = body.substr(pos, comma - pos);
        SPECINFER_CHECK(!piece.empty() &&
                            piece.find_first_not_of("0123456789") ==
                                std::string::npos,
                        "bad expansion width '" << piece << "' in '"
                                                << text << "'");
        cfg.widths.push_back(
            static_cast<size_t>(std::stoul(piece)));
        pos = comma + 1;
    }
    cfg.validate();
    return cfg;
}

void
ExpansionConfig::validate() const
{
    for (size_t k : widths)
        SPECINFER_CHECK(k >= 1, "expansion width must be >= 1");
}

} // namespace core
} // namespace specinfer
