#include "core/expansion.h"

#include <sstream>

#include "util/logging.h"

namespace specinfer {
namespace core {

size_t
ExpansionConfig::maxNodes() const
{
    size_t total = 0;
    size_t frontier = 1;
    for (size_t k : widths) {
        frontier *= k;
        total += frontier;
    }
    return total;
}

ExpansionConfig
ExpansionConfig::paperDefault()
{
    return {{1, 1, 3, 1, 1, 1, 1, 1}};
}

ExpansionConfig
ExpansionConfig::widthAtThird(size_t k, size_t len)
{
    SPECINFER_CHECK(len >= 3, "widthAtThird needs at least 3 steps");
    ExpansionConfig cfg;
    cfg.widths.assign(len, 1);
    cfg.widths[2] = k;
    return cfg;
}

ExpansionConfig
ExpansionConfig::uniform(size_t k, size_t len)
{
    ExpansionConfig cfg;
    cfg.widths.assign(len, k);
    return cfg;
}

ExpansionConfig
ExpansionConfig::none()
{
    return {};
}

std::string
ExpansionConfig::toString() const
{
    std::ostringstream oss;
    oss << "<";
    for (size_t i = 0; i < widths.size(); ++i) {
        if (i)
            oss << ",";
        oss << widths[i];
    }
    oss << ">";
    return oss.str();
}

void
ExpansionConfig::validate() const
{
    for (size_t k : widths)
        SPECINFER_CHECK(k >= 1, "expansion width must be >= 1");
}

} // namespace core
} // namespace specinfer
