#include "core/speculator.h"

#include <algorithm>

#include "tensor/ops.h"
#include "util/logging.h"

namespace specinfer {
namespace core {

size_t
SpeculatorConfig::nodeBudget() const
{
    return policy == ExpansionPolicy::AdaptiveMass
               ? maxTreeNodes
               : expansion.maxNodes();
}

Speculator::Speculator(std::vector<const model::Transformer *> ssms,
                       SpeculatorConfig cfg)
    : ssms_(std::move(ssms)), cfg_(std::move(cfg))
{
    SPECINFER_CHECK(!ssms_.empty(), "speculator needs at least one SSM");
    for (const model::Transformer *ssm : ssms_)
        SPECINFER_CHECK(ssm != nullptr, "null SSM in pool");
    cfg_.expansion.validate();
    if (cfg_.policy == ExpansionPolicy::AdaptiveMass) {
        SPECINFER_CHECK(cfg_.mode == SpeculationMode::TopK,
                        "adaptive expansion requires TopK mode");
        SPECINFER_CHECK(cfg_.adaptiveMass > 0.0f &&
                        cfg_.adaptiveMass <= 1.0f,
                        "adaptiveMass must be in (0, 1]");
        SPECINFER_CHECK(cfg_.adaptiveMaxWidth >= 1,
                        "adaptiveMaxWidth must be >= 1");
    }
}

std::vector<model::KvCache>
Speculator::makeCaches(size_t capacity) const
{
    std::vector<model::KvCache> caches;
    caches.reserve(ssms_.size());
    for (const model::Transformer *ssm : ssms_)
        caches.push_back(ssm->makeCache(capacity));
    return caches;
}

TokenTree
Speculator::speculate(const std::vector<int> &seq,
                      std::vector<model::KvCache> &caches,
                      util::Rng &rng, SpeculationCost *cost) const
{
    SPECINFER_CHECK(!seq.empty(), "cannot speculate on empty sequence");
    SPECINFER_CHECK(caches.size() == ssms_.size(),
                    "one cache per SSM required");
    TokenTree tree = speculateOne(0, seq, caches[0], rng, cost);
    for (size_t s = 1; s < ssms_.size(); ++s) {
        TokenTree other = speculateOne(s, seq, caches[s], rng, cost);
        tree.merge(other);
    }
    return tree;
}

TokenTree
Speculator::speculateOne(size_t ssm_id, const std::vector<int> &seq,
                         model::KvCache &cache, util::Rng &rng,
                         SpeculationCost *cost) const
{
    const model::Transformer &ssm = *ssms_[ssm_id];
    const size_t vocab = ssm.config().vocabSize;
    const size_t cached = cache.length();
    SPECINFER_CHECK(cached < seq.size(),
                    "SSM cache already contains the whole sequence; "
                    "the last token must be uncached");

    TokenTree tree(seq.back());

    // Catch-up: decode all not-yet-cached verified tokens, including
    // the root, as one sequential chunk. The root's output row gives
    // the SSM's distribution at the tree root.
    std::vector<int> catch_up(seq.begin() + cached, seq.end());
    tensor::Tensor logits = ssm.forward(
        model::DecodeChunk::sequence(catch_up), cache);
    if (cost) {
        cost->ssmTokensDecoded += catch_up.size();
        cost->ssmForwardCalls += 1;
    }

    // Frontier entry: a tree node awaiting expansion, with its SSM
    // cache slot and the slots of its speculated ancestors.
    struct Frontier
    {
        NodeId node;
        std::vector<size_t> extras;       ///< speculated ancestor slots
        std::vector<float> dist;          ///< SSM dist at this node
    };

    const size_t prefix = seq.size(); // whole verified seq now cached
    std::vector<Frontier> frontier;
    frontier.push_back({TokenTree::kRoot, {},
                        model::logitsToProbs(
                            logits.row(catch_up.size() - 1), vocab,
                            cfg_.ssmSampling)});
    tree.setSsmDistribution(TokenTree::kRoot,
                            static_cast<int>(ssm_id),
                            frontier.back().dist);

    for (size_t step = 0; step < cfg_.expansion.steps(); ++step) {
        const size_t k = cfg_.expansion.widths[step];

        // Select k candidates per frontier node; duplicates within a
        // node fold into one chunk entry but keep their proposal
        // multiplicity (TokenTree::addChild).
        model::DecodeChunk chunk;
        chunk.prefixLen = prefix;
        std::vector<NodeId> chunk_nodes;
        std::vector<size_t> chunk_frontier; // frontier index per entry
        for (size_t f = 0; f < frontier.size(); ++f) {
            const Frontier &fr = frontier[f];
            std::vector<int> picks;
            if (cfg_.policy == ExpansionPolicy::AdaptiveMass) {
                // Expand the node's top tokens until the target
                // probability mass is reached (confident nodes stay
                // narrow, uncertain nodes branch wide).
                std::vector<size_t> top = tensor::topkRow(
                    fr.dist.data(), vocab,
                    std::min(cfg_.adaptiveMaxWidth, vocab));
                float mass = 0.0f;
                for (size_t idx : top) {
                    picks.push_back(static_cast<int>(idx));
                    mass += fr.dist[idx];
                    if (mass >= cfg_.adaptiveMass)
                        break;
                }
            } else if (cfg_.mode == SpeculationMode::TopK) {
                std::vector<size_t> top = tensor::topkRow(
                    fr.dist.data(), vocab, std::min(k, vocab));
                for (size_t idx : top)
                    picks.push_back(static_cast<int>(idx));
            } else {
                for (size_t j = 0; j < k; ++j)
                    picks.push_back(static_cast<int>(
                        rng.categorical(fr.dist)));
            }
            for (int token : picks) {
                if (tree.speculatedCount() >= cfg_.nodeBudget())
                    break;
                size_t before = tree.size();
                NodeId child = tree.addChild(fr.node, token,
                                             static_cast<int>(ssm_id));
                if (tree.size() == before)
                    continue; // duplicate: proposal recorded, no node
                chunk.tokens.push_back(token);
                chunk.parents.push_back(-1);
                chunk.extraSlots.push_back(fr.extras);
                chunk_nodes.push_back(child);
                chunk_frontier.push_back(f);
            }
        }
        if (chunk.tokens.empty())
            break;

        const size_t chunk_base = cache.length();
        tensor::Tensor step_logits = ssm.forward(chunk, cache);
        if (cost) {
            cost->ssmTokensDecoded += chunk.tokens.size();
            cost->ssmForwardCalls += 1;
        }

        std::vector<Frontier> next;
        next.reserve(chunk_nodes.size());
        const bool last_step = step + 1 == cfg_.expansion.steps();
        for (size_t j = 0; j < chunk_nodes.size(); ++j) {
            std::vector<float> dist = model::logitsToProbs(
                step_logits.row(j), vocab, cfg_.ssmSampling);
            tree.setSsmDistribution(chunk_nodes[j],
                                    static_cast<int>(ssm_id), dist);
            if (last_step)
                continue;
            Frontier fr;
            fr.node = chunk_nodes[j];
            fr.extras = frontier[chunk_frontier[j]].extras;
            fr.extras.push_back(chunk_base + j);
            fr.dist = std::move(dist);
            next.push_back(std::move(fr));
        }
        frontier = std::move(next);
        if (frontier.empty())
            break;
    }

    // Roll back speculated rows; keep the whole verified sequence so
    // the next call only decodes newly verified tokens.
    cache.truncate(prefix);
    return tree;
}

} // namespace core
} // namespace specinfer
