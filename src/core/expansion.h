/**
 * @file
 * Static token-tree expansion configuration (paper §3).
 *
 * An expansion config <k_1, ..., k_m> directs the speculator to take
 * m speculative steps, expanding k_i candidate tokens from every
 * frontier node at step i. The paper's end-to-end runs use
 * <1,1,3,1,1,1,1,1>; the width sweeps use <1,1,k,1,1,1,1,1>.
 */

#ifndef SPECINFER_CORE_EXPANSION_H
#define SPECINFER_CORE_EXPANSION_H

#include <cstddef>
#include <string>
#include <vector>

namespace specinfer {
namespace core {

/** Per-step branching factors for expansion-based tree construction. */
struct ExpansionConfig
{
    /** k_i = tokens expanded per frontier node at step i. */
    std::vector<size_t> widths;

    /** Number of speculative steps (tree depth below the root). */
    size_t steps() const { return widths.size(); }

    /**
     * Upper bound on speculated (non-root) nodes: sum of cumulative
     * width products. Sampled-mode duplicates only shrink the tree.
     */
    size_t maxNodes() const;

    /** The paper's default <1,1,3,1,1,1,1,1>. */
    static ExpansionConfig paperDefault();

    /** Width sweep config <1,1,k,1,...,1> of total length `len`. */
    static ExpansionConfig widthAtThird(size_t k, size_t len = 8);

    /** Constant-width config <k,k,...,k> of length `len`. */
    static ExpansionConfig uniform(size_t k, size_t len);

    /** Zero-step config: speculation disabled (incremental mode). */
    static ExpansionConfig none();

    /** e.g. "<1,1,3,1,1,1,1,1>". */
    std::string toString() const;

    /**
     * Parse "1,1,3,1" (optionally wrapped in <>, the toString()
     * form). An empty list means none() — incremental mode. Aborts
     * on malformed input (CLI/recording surface, fail fast).
     */
    static ExpansionConfig parse(const std::string &text);

    /** Abort if any width is zero. */
    void validate() const;
};

} // namespace core
} // namespace specinfer

#endif // SPECINFER_CORE_EXPANSION_H
