/**
 * @file
 * Token tree (paper Definition 3.1) and token tree merge
 * (Definition 3.2).
 *
 * Each node is labelled with a token; the sequence S_u identified by
 * node u is the concatenation of tokens on the root-to-u path. The
 * root holds the last verified token, so its children are the first
 * speculated tokens.
 *
 * Nodes also carry *proposal* metadata needed by multi-step
 * speculative sampling: which SSM(s) proposed the node (a node kept
 * once per unique token can carry several proposals — a multiset of
 * candidates in Algorithm 2's terms), and each SSM's full next-token
 * distribution at every node it expanded.
 */

#ifndef SPECINFER_CORE_TOKEN_TREE_H
#define SPECINFER_CORE_TOKEN_TREE_H

#include <cstdint>
#include <string>
#include <vector>

#include "model/transformer.h"

namespace specinfer {
namespace core {

/** Index of a node within its TokenTree. */
using NodeId = int32_t;

/** One node of a token tree. */
struct TreeNode
{
    int token;                       ///< token labelling this node
    NodeId parent;                   ///< -1 for the root
    std::vector<NodeId> children;    ///< in creation order

    /**
     * The ids of the SSMs that proposed this node, one entry per
     * independent draw (a multiset — Algorithm 2's candidate set).
     * A token proposed by two SSMs appears once as a node but
     * carries both proposals; a token the *same* SSM samples twice
     * is two entries, because stochastic verification residualizes
     * the LLM distribution once per genuine draw (Theorem 4.2).
     * merge() unions multisets by per-SSM max multiplicity, so
     * re-grafting the same proposal (self-merge / re-merge) never
     * inflates a draw into two.
     */
    std::vector<int> proposals;

    /** Depth below the root (root = 0). */
    size_t depth = 0;
};

/**
 * Speculated token tree.
 *
 * Nodes are stored in creation order, which is always topological
 * (parents precede children); this makes node order directly usable
 * as the DFS-style chunk order required by tree-based parallel
 * decoding and KV-cache compaction.
 */
class TokenTree
{
  public:
    /** Create a tree whose root holds the given (verified) token. */
    explicit TokenTree(int root_token);

    /** Total number of nodes, including the root. */
    size_t size() const { return nodes_.size(); }

    /** Number of speculated (non-root) nodes. */
    size_t speculatedCount() const { return nodes_.size() - 1; }

    /** Maximum node depth (root = 0). */
    size_t maxDepth() const;

    static constexpr NodeId kRoot = 0;

    const TreeNode &node(NodeId id) const;

    /**
     * Add a child of `parent` labelled `token`, proposed by SSM
     * `ssm_id`. If a child with the same token already exists the
     * proposal is recorded on it instead (Definition 3.2 merge by
     * sequence identity) and the existing node id is returned. Each
     * call records one proposal — callers pass one independent draw
     * per call.
     */
    NodeId addChild(NodeId parent, int token, int ssm_id);

    /** Tokens on the root-to-node path, root first. */
    std::vector<int> pathTokens(NodeId id) const;

    /**
     * Record SSM `ssm_id`'s next-token distribution conditioned on
     * S_node (needed to verify that SSM's proposals at this node).
     */
    void setSsmDistribution(NodeId id, int ssm_id,
                            std::vector<float> dist);

    /** Stored distribution, or nullptr if ssm_id never expanded id. */
    const std::vector<float> *ssmDistribution(NodeId id,
                                              int ssm_id) const;

    /**
     * Token tree merge (Definition 3.2): graft every path of `other`
     * into this tree so the result represents the union of both path
     * sets. Proposal multisets union by per-SSM max multiplicity
     * (idempotent: re-merging a tree never duplicates proposals) and
     * SSM distributions are unioned.
     * @pre other has the same root token.
     */
    void merge(const TokenTree &other);

    /**
     * Convert to a decode chunk (node order; root's parent becomes
     * `root_parent`, an index into the caller's enclosing chunk or
     * -1). Node i of the tree is chunk token `offset + i` where
     * offset is the caller-managed position of the root.
     */
    model::DecodeChunk toChunk(int32_t root_parent = -1) const;

    /**
     * All root-to-node token sequences (one per node), used to state
     * Definition 3.2 properties in tests.
     */
    std::vector<std::vector<int>> allPaths() const;

    /** Multiline ASCII rendering for debugging and examples. */
    std::string toAscii() const;

  private:
    std::vector<TreeNode> nodes_;
    /** Sparse per-node (ssm_id, distribution) records. */
    struct DistRecord
    {
        NodeId node;
        int ssmId;
        std::vector<float> dist;
    };
    std::vector<DistRecord> dists_;
};

} // namespace core
} // namespace specinfer

#endif // SPECINFER_CORE_TOKEN_TREE_H
