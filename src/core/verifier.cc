#include "core/verifier.h"

#include <algorithm>

#include "tensor/ops.h"
#include "util/logging.h"

namespace specinfer {
namespace core {

Verifier::Verifier(VerifyMode mode, model::SamplingParams llm_params)
    : mode_(mode), llmParams_(llm_params)
{
    if (mode_ == VerifyMode::Greedy) {
        SPECINFER_CHECK(llm_params.isGreedy(),
                        "greedy verification requires a greedy "
                        "(temperature <= 0) LLM distribution");
    } else {
        SPECINFER_CHECK(!llm_params.isGreedy(),
                        "stochastic verification requires temperature "
                        "> 0");
    }
}

VerifyResult
Verifier::verify(const TokenTree &tree, const tensor::Tensor &llm_logits,
                 util::Rng &rng) const
{
    SPECINFER_CHECK(llm_logits.rows() == tree.size(),
                    "need one LLM logit row per tree node");
    switch (mode_) {
      case VerifyMode::Greedy:
        return verifyGreedy(tree, llm_logits);
      case VerifyMode::MultiStepSampling:
        return verifyStochastic(tree, llm_logits, rng);
      case VerifyMode::NaiveSampling:
        return verifyNaive(tree, llm_logits, rng);
    }
    SPECINFER_FATAL("unreachable verify mode");
}

VerifyResult
Verifier::verifyGreedy(const TokenTree &tree,
                       const tensor::Tensor &llm_logits) const
{
    VerifyResult res;
    NodeId u = TokenTree::kRoot;
    for (;;) {
        int llm_token = model::greedyToken(llm_logits.row(u),
                                           llm_logits.cols());
        NodeId next = -1;
        for (NodeId v : tree.node(u).children) {
            if (tree.node(v).token == llm_token) {
                next = v;
                break;
            }
        }
        if (next < 0) {
            res.bonusToken = llm_token;
            res.tokens.push_back(llm_token);
            return res;
        }
        res.acceptedNodes.push_back(next);
        res.tokens.push_back(llm_token);
        u = next;
    }
}

VerifyResult
Verifier::verifyStochastic(const TokenTree &tree,
                           const tensor::Tensor &llm_logits,
                           util::Rng &rng) const
{
    const size_t vocab = llm_logits.cols();
    VerifyResult res;
    NodeId u = TokenTree::kRoot;

    while (!tree.node(u).children.empty()) {
        // Current (residualizable) LLM distribution at u.
        std::vector<float> p = model::logitsToProbs(
            llm_logits.row(u), vocab, llmParams_);

        // Candidate multiset: one entry per proposal.
        struct Candidate
        {
            NodeId node;
            int ssmId;
        };
        std::vector<Candidate> pool;
        for (NodeId v : tree.node(u).children)
            for (int ssm_id : tree.node(v).proposals)
                pool.push_back({v, ssm_id});

        NodeId accepted = -1;
        while (!pool.empty()) {
            size_t pick = rng.uniformInt(
                static_cast<uint64_t>(pool.size()));
            Candidate cand = pool[pick];
            const int token = tree.node(cand.node).token;
            const std::vector<float> *q =
                tree.ssmDistribution(u, cand.ssmId);
            SPECINFER_CHECK(q != nullptr,
                            "missing SSM " << cand.ssmId
                                           << " distribution at node "
                                           << u);
            const float qx = (*q)[static_cast<size_t>(token)];
            const float px = p[static_cast<size_t>(token)];
            const double r = rng.uniform();
            const bool accept =
                qx > 0.0f ? (r * static_cast<double>(qx) <=
                             static_cast<double>(px))
                          : (px > 0.0f);
            if (accept) {
                accepted = cand.node;
                break;
            }
            // Residual renormalization: p <- norm(max(0, p - q)).
            // Committed only when the residual keeps positive mass:
            // when q numerically dominates p the subtraction would
            // zero out, and resetting to the full LLM distribution
            // here would resurrect mass already consumed by earlier
            // rejections (biasing the emitted law) — instead keep
            // the last strictly-positive residual (Alg. 2).
            std::vector<float> residual(vocab);
            double total = 0.0;
            for (size_t x = 0; x < vocab; ++x) {
                residual[x] = std::max(0.0f, p[x] - (*q)[x]);
                total += residual[x];
            }
            if (total > 0.0) {
                const float inv = static_cast<float>(1.0 / total);
                for (size_t x = 0; x < vocab; ++x)
                    p[x] = residual[x] * inv;
            }
            pool.erase(pool.begin() + static_cast<ptrdiff_t>(pick));
        }

        if (accepted < 0) {
            // All candidates rejected: emit from the final residual.
            int token = static_cast<int>(rng.categorical(p));
            res.bonusToken = token;
            res.tokens.push_back(token);
            return res;
        }
        res.acceptedNodes.push_back(accepted);
        res.tokens.push_back(tree.node(accepted).token);
        u = accepted;
    }

    // Reached a leaf with everything accepted: bonus token from the
    // LLM's (unresidualized) distribution at the leaf.
    std::vector<float> p = model::logitsToProbs(llm_logits.row(u),
                                                vocab, llmParams_);
    int token = static_cast<int>(rng.categorical(p));
    res.bonusToken = token;
    res.tokens.push_back(token);
    return res;
}

VerifyResult
Verifier::verifyNaive(const TokenTree &tree,
                      const tensor::Tensor &llm_logits,
                      util::Rng &rng) const
{
    const size_t vocab = llm_logits.cols();
    VerifyResult res;
    NodeId u = TokenTree::kRoot;
    for (;;) {
        std::vector<float> p = model::logitsToProbs(
            llm_logits.row(u), vocab, llmParams_);
        int token = static_cast<int>(rng.categorical(p));
        NodeId next = -1;
        for (NodeId v : tree.node(u).children) {
            if (tree.node(v).token == token) {
                next = v;
                break;
            }
        }
        if (next < 0) {
            res.bonusToken = token;
            res.tokens.push_back(token);
            return res;
        }
        res.acceptedNodes.push_back(next);
        res.tokens.push_back(token);
        u = next;
    }
}

} // namespace core
} // namespace specinfer
