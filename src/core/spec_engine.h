/**
 * @file
 * The speculate / tree-decode / verify loop (paper Algorithm 2) and
 * per-request session state.
 *
 * A SpecSession owns one request's verified sequence, LLM KV cache,
 * and per-SSM KV caches. Each step():
 *   1. the Speculator builds a token tree rooted at the last
 *      verified token;
 *   2. the LLM decodes the whole tree (plus any not-yet-cached
 *      verified tokens) in a single tree-based parallel decoding
 *      chunk;
 *   3. the Verifier walks the tree and appends the accepted tokens
 *      plus one bonus token;
 *   4. the LLM cache keeps the verified path and drops the rejected
 *      branches (KvCache::keepRows).
 *
 * Configured with an empty expansion the engine degenerates to
 * exact incremental decoding (the paper's "SpecInfer w/ incremental
 * decoding" ablation); with a single SSM and all-ones expansion it
 * is sequence-based speculative inference.
 */

#ifndef SPECINFER_CORE_SPEC_ENGINE_H
#define SPECINFER_CORE_SPEC_ENGINE_H

#include <iosfwd>
#include <memory>
#include <vector>

#include "core/speculator.h"
#include "core/verifier.h"
#include "model/transformer.h"
#include "util/rng.h"

namespace specinfer {
namespace obs {
class ObsContext;
}
namespace model {
class PrefixKvStore;
}
namespace core {

/** Full engine configuration. */
struct EngineConfig
{
    SpeculatorConfig spec;
    model::SamplingParams llmSampling;
    VerifyMode verify = VerifyMode::Greedy;
    size_t maxNewTokens = 128;
    bool stopAtEos = true;
    uint64_t seed = 0x5eedULL;

    /**
     * Chunked prefill: cap the number of prompt tokens the LLM
     * processes in one iteration (0 = unlimited). Long prompts are
     * then absorbed across several iterations that emit no tokens,
     * bounding per-iteration latency so batched co-runners are not
     * stalled behind one giant prefill.
     */
    size_t maxPrefillChunk = 0;

    /**
     * Stop sequences: generation ends as soon as the generated
     * suffix equals one of these token sequences (the match is kept
     * in the output, like EOS). Empty entries are ignored.
     */
    std::vector<std::vector<int>> stopSequences;

    /**
     * Observability context (non-owning). The engine resolves this
     * against the process-global context at construction
     * (obs::resolveObs); when both are null every instrumentation
     * site is a single skipped branch and outputs are bit-identical
     * to an uninstrumented build.
     */
    obs::ObsContext *obs = nullptr;

    /** Convenience: greedy engine with the paper's expansion. */
    static EngineConfig greedyDefault();

    /** Convenience: stochastic engine (MSS) with temperature t. */
    static EngineConfig stochasticDefault(float temperature = 1.0f);
};

/** Per-iteration record feeding figures 9-11 and the simulator. */
struct StepRecord
{
    size_t treeSize = 0;         ///< speculated (non-root) nodes
    size_t verifiedTokens = 0;   ///< tokens appended (incl. bonus)
    size_t llmChunkTokens = 0;   ///< tokens the LLM decoded this step
    size_t ssmTokensDecoded = 0; ///< SSM token-forwards this step

    /** True for a chunked-prefill iteration that only absorbed
     *  prompt tokens (no speculation, no tokens emitted). */
    bool prefill = false;

    /** True when an injected speculator/verifier fault degraded this
     *  step to plain incremental decoding (util::FaultPoint::SsmStep
     *  or Verify); the step still emits at least one token. */
    bool fallback = false;
};

/** Accumulated per-request speculation statistics. */
struct SpecStats
{
    std::vector<StepRecord> steps;

    size_t llmSteps() const { return steps.size(); }

    /** Speculate+verify iterations, excluding prefill-only steps. */
    size_t decodeSteps() const;

    /** Steps degraded to incremental decoding by an injected fault. */
    size_t fallbackSteps() const;

    size_t totalGenerated() const;
    size_t totalLlmTokens() const;
    size_t totalSsmTokens() const;

    /** Mean verified tokens per *decode* step (Table 2's metric);
     *  prefill-only steps emit nothing and are excluded. */
    double avgVerifiedPerStep() const;
};

/** Result of a complete generation. */
struct GenerationResult
{
    std::vector<int> tokens;  ///< generated tokens (prompt excluded)
    std::vector<float> logProbs; ///< per-token LLM log-probabilities
    SpecStats stats;
};

class SpecEngine;

/**
 * Mutable per-request decoding state. Create via
 * SpecEngine::makeSession(); drive with step() until done().
 */
class SpecSession
{
  public:
    bool done() const { return done_; }

    /**
     * Run one speculate+verify iteration. @pre !done()
     *
     * @param allow_speculation When false the step skips the
     *        speculator entirely and decodes one plain incremental
     *        token (the serving runtime's degradation ladder uses
     *        this to disable speculation after repeated SSM faults;
     *        speculation is an optimization, never a correctness
     *        dependency).
     */
    void step(bool allow_speculation = true);

    /** Prompt + generated tokens. */
    const std::vector<int> &sequence() const { return seq_; }

    /** Generated tokens only. */
    std::vector<int> generated() const;

    const SpecStats &stats() const { return stats_; }

    /** Why the session finished (valid once done()). The engine
     *  only ever sets the first five; the trailing outcomes are set
     *  by the serving runtime when it terminates a request without
     *  the session itself finishing. */
    enum class StopReason
    {
        None,
        Eos,
        MaxTokens,
        CapacityLimit,
        StopSequence,
        Deadline,   ///< iteration-budget deadline expired (runtime)
        Cancelled,  ///< client cancellation (runtime)
        Preempted,  ///< preemption/retry budget exhausted (runtime)
        Shed,       ///< load-shed from a full pending queue (runtime)
    };
    StopReason stopReason() const { return stopReason_; }

    /**
     * Log-probability of each generated token under the LLM's
     * plain (temperature-1) distribution at its decoding position;
     * parallel to generated().
     */
    const std::vector<float> &logProbs() const { return logProbs_; }

    /**
     * Serialize the full decoding state (sequence, log-probs, RNG,
     * stats, stop state, LLM + SSM KV caches) so a serving snapshot
     * can reconstruct the session bit-exactly via
     * SpecEngine::loadSession().
     */
    void save(std::ostream &out) const;

    /** Current sampler/RNG state — the "RNG cursor" journaled after
     *  every step so replay resumes the exact random stream. */
    util::RngState rngCursor() const { return rng_.state(); }

    /**
     * Attach the serving runtime's prefix-block payload store. Once
     * attached the session publishes every full prompt block it has
     * resident (fill is a no-op for blocks the allocator never
     * interned) and may adopt blocks via adoptPrefix(). Purely a
     * performance channel: chunk-layout invariance keeps outputs
     * bit-identical whether rows are adopted or recomputed.
     */
    void enablePrefixSharing(model::PrefixKvStore *store);

    /**
     * Adopt already-computed KV rows for a prompt prefix instead of
     * prefilling them. `full_hashes` are leading full prompt-block
     * hashes (each must match this prompt's own chain); `partial_hash`
     * optionally names an interned block whose first `partial_tokens`
     * tokens extend the match past the last full block. Adoption is
     * contiguous, stops at the first cold (unfilled) block, and is
     * capped at promptLen - 1 so step() always has at least the tree
     * root left to decode.
     *
     * @pre enablePrefixSharing() was called and no step has run.
     * @return Prompt tokens whose prefill was skipped.
     */
    size_t adoptPrefix(const std::vector<uint64_t> &full_hashes,
                       uint64_t partial_hash, size_t partial_tokens);

    /**
     * Re-apply one journaled step without recomputing it: append the
     * step's verified tokens and log-probs, record its StepRecord,
     * and jump the RNG to the journaled post-step cursor.
     *
     * KV caches are intentionally left behind: step() already
     * decodes any verified-but-uncached tokens as catch-up in its
     * next chunk (the chunked-prefill machinery), and chunk layout
     * does not affect outputs, so the caches rebuild lazily and the
     * token stream stays bit-identical.
     */
    void restoreStep(const std::vector<int> &tokens,
                     const std::vector<float> &log_probs,
                     const StepRecord &record,
                     const util::RngState &rng_after, bool done,
                     StopReason stop_reason);

    /** LLM KV rows currently resident (the chunked-prefill cursor:
     *  step() prefills from here). */
    size_t cachedTokens() const { return llmCache_.length(); }

    /**
     * Redo-recovery companion to restoreStep(): recompute LLM KV
     * rows for seq_[cachedTokens(), target_len) with plain
     * sequential forwards (bit-identical to what the crashed
     * process held — chunk layout never affects values), and
     * republish any prompt blocks that become resident.
     *
     * restoreStep() alone leaves the cache behind and relies on
     * step()'s lazy catch-up — output-invariant, but the catch-up
     * repeats prefill *iterations*, which wall-clock deadlines can
     * observe. Replay calls this after each restored record to keep
     * the cache at exactly the live run's level, so a recovered
     * session spends the same number of iterations per token as an
     * uninterrupted one. No-op when target_len is already resident;
     * consumes no session RNG and records no step.
     */
    void hydrateKv(size_t target_len);

  private:
    friend class SpecEngine;
    SpecSession(const SpecEngine *engine, std::vector<int> prompt,
                uint64_t request_seed, size_t max_new_tokens,
                uint64_t track);

    /** Truncate at a stop-sequence match inside `appended` and set
     *  the stop state; returns the (possibly shortened) list. */
    std::vector<int> applyStopSequences(std::vector<int> appended);

    /** Capture newly resident full prompt blocks into the prefix
     *  store (no-op for blocks the allocator never declared). */
    void publishPromptBlocks();

    const SpecEngine *engine_;
    std::vector<int> seq_;
    size_t promptLen_;
    size_t maxNewTokens_;
    std::vector<float> logProbs_;
    model::KvCache llmCache_;
    std::vector<model::KvCache> ssmCaches_;
    util::Rng rng_;
    SpecStats stats_;
    bool done_ = false;
    StopReason stopReason_ = StopReason::None;
    /** Trace track (request id under the request manager; 0 for
     *  bare generate() sessions and reloaded snapshots). */
    uint64_t track_ = 0;

    /** Prefix-sharing payload store (non-owning; null when the
     *  serving runtime has sharing disabled). */
    model::PrefixKvStore *prefixStore_ = nullptr;
    /** Chained hashes of this prompt's full blocks. */
    std::vector<uint64_t> promptHashes_;
    /** Prompt blocks already captured into the store. */
    size_t publishedBlocks_ = 0;
};

/**
 * The serving engine: immutable models + configuration shared by
 * all requests.
 */
class SpecEngine
{
  public:
    /**
     * @param llm Non-owning pointer to the target model.
     * @param ssms Non-owning SSM pool (may be empty only when the
     *        expansion config is empty, i.e. incremental mode).
     */
    SpecEngine(const model::Transformer *llm,
               std::vector<const model::Transformer *> ssms,
               EngineConfig cfg);

    const EngineConfig &config() const { return cfg_; }
    const model::Transformer &llm() const { return *llm_; }

    /** Maximum speculated nodes a merged token tree can hold (the
     *  per-iteration KV headroom a request needs beyond its
     *  sequence). */
    size_t treeBudget() const { return treeBudget_; }

    /**
     * Create a session for one request.
     *
     * @param max_new_tokens Per-request generation budget override;
     *        0 uses the engine default.
     */
    SpecSession makeSession(std::vector<int> prompt,
                            uint64_t request_seed = 0,
                            size_t max_new_tokens = 0) const;

    /** Run a request to completion. */
    GenerationResult generate(const std::vector<int> &prompt,
                              uint64_t request_seed = 0,
                              size_t max_new_tokens = 0) const;

    /**
     * Reconstruct a session saved with SpecSession::save(). The
     * engine must be configured identically to the saving engine
     * (model dims and tree budget are validated; sampling/seed
     * configuration is the caller's responsibility — the serving
     * snapshot carries the engine identity implicitly).
     */
    SpecSession loadSession(std::istream &in) const;

  private:
    friend class SpecSession;

    const model::Transformer *llm_;
    std::unique_ptr<Speculator> speculator_; // null in incremental mode
    Verifier verifier_;
    EngineConfig cfg_;
    size_t cacheCapacity_;
    size_t treeBudget_; ///< max speculated nodes in a merged tree
    obs::ObsContext *obs_; ///< resolved cfg.obs ?: global (may be null)
};

/**
 * Reference incremental decoding (paper Algorithm 1), implemented
 * independently of the speculative path; used as ground truth by
 * the equivalence tests and as the baseline in benches.
 *
 * `stop_sequences` mirrors EngineConfig::stopSequences: generation
 * ends as soon as the generated suffix equals one of the entries
 * (the match is kept in the output), keeping the oracle comparable
 * to SpecSession on configs that use stop sequences.
 */
GenerationResult incrementalGenerate(
    const model::Transformer &llm, const std::vector<int> &prompt,
    const model::SamplingParams &params, size_t max_new_tokens,
    util::Rng &rng, bool stop_at_eos = true,
    const std::vector<std::vector<int>> &stop_sequences = {});

} // namespace core
} // namespace specinfer

#endif // SPECINFER_CORE_SPEC_ENGINE_H
