/**
 * @file
 * Token tree verification (paper §4.3, Algorithm 2).
 *
 * Given the LLM's output distribution at every tree node (produced
 * by tree-based parallel decoding), the verifier walks the tree from
 * the root and decides which speculated tokens to accept:
 *
 *  - VerifyGreedy: follow the child matching the LLM argmax; output
 *    is token-for-token identical to incremental greedy decoding.
 *  - VerifyStochastic (multi-step speculative sampling, MSS): try
 *    candidates in random order, accept candidate x from SSM s with
 *    probability min(1, P_LLM(x)/P_SSM_s(x)), residual-renormalize
 *    P_LLM on rejection; provably preserves the LLM's decoding
 *    distribution (Theorem 4.2).
 *  - Naive sampling (NS): sample from the LLM and accept only if a
 *    matching child exists; the baseline MSS dominates (Theorem 4.3).
 *
 * Every verification appends exactly one bonus token drawn from the
 * LLM at the deepest verified node, so an iteration always produces
 * at least one token.
 */

#ifndef SPECINFER_CORE_VERIFIER_H
#define SPECINFER_CORE_VERIFIER_H

#include <vector>

#include "core/token_tree.h"
#include "model/sampler.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace specinfer {
namespace core {

/** Which verification algorithm to run. */
enum class VerifyMode
{
    Greedy,             ///< Algorithm 2, VerifyGreedy
    MultiStepSampling,  ///< Algorithm 2, VerifyStochastic (MSS)
    NaiveSampling,      ///< the NS baseline of §4.3 / Table 3
};

/** Outcome of verifying one token tree. */
struct VerifyResult
{
    /** Accepted tree nodes, in path order from the root's child. */
    std::vector<NodeId> acceptedNodes;

    /** The extra token emitted by the LLM at the deepest node. */
    int bonusToken = -1;

    /** All tokens appended this step: accepted tokens + bonus. */
    std::vector<int> tokens;
};

/**
 * Token tree verifier. Stateless; one instance can serve all
 * requests of a given decoding configuration.
 */
class Verifier
{
  public:
    /**
     * @param mode Verification algorithm.
     * @param llm_params Decoding distribution of the LLM (greedy
     *        mode ignores everything except argmax).
     */
    Verifier(VerifyMode mode, model::SamplingParams llm_params);

    VerifyMode mode() const { return mode_; }

    /**
     * Verify a speculated token tree against the LLM's outputs.
     *
     * @param tree The speculated tree (root = last verified token).
     * @param llm_logits LLM logit rows indexed by tree node id
     *        (shape [tree.size() x vocab]).
     * @param rng Randomness for the stochastic modes.
     */
    VerifyResult verify(const TokenTree &tree,
                        const tensor::Tensor &llm_logits,
                        util::Rng &rng) const;

  private:
    VerifyResult verifyGreedy(const TokenTree &tree,
                              const tensor::Tensor &llm_logits) const;
    VerifyResult verifyStochastic(const TokenTree &tree,
                                  const tensor::Tensor &llm_logits,
                                  util::Rng &rng) const;
    VerifyResult verifyNaive(const TokenTree &tree,
                             const tensor::Tensor &llm_logits,
                             util::Rng &rng) const;

    VerifyMode mode_;
    model::SamplingParams llmParams_;
};

} // namespace core
} // namespace specinfer

#endif // SPECINFER_CORE_VERIFIER_H
