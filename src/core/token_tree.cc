#include "core/token_tree.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "util/logging.h"

namespace specinfer {
namespace core {

TokenTree::TokenTree(int root_token)
{
    TreeNode root;
    root.token = root_token;
    root.parent = -1;
    root.depth = 0;
    nodes_.push_back(std::move(root));
}

size_t
TokenTree::maxDepth() const
{
    size_t depth = 0;
    for (const TreeNode &n : nodes_)
        depth = std::max(depth, n.depth);
    return depth;
}

const TreeNode &
TokenTree::node(NodeId id) const
{
    SPECINFER_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size(),
                    "node id " << id << " out of range");
    return nodes_[static_cast<size_t>(id)];
}

NodeId
TokenTree::addChild(NodeId parent, int token, int ssm_id)
{
    SPECINFER_CHECK(parent >= 0 &&
                    static_cast<size_t>(parent) < nodes_.size(),
                    "parent id " << parent << " out of range");
    for (NodeId c : nodes_[parent].children) {
        if (nodes_[c].token == token) {
            // Every addChild() call is one independent proposal, so
            // the multiset keeps multiplicity: a token an SSM samples
            // twice is two genuine draws, and Theorem 4.2 exactness
            // requires stochastic verification to residualize once
            // per draw. Deduplication of *re-grafted* proposals (the
            // same draw seen again) happens in merge().
            nodes_[c].proposals.push_back(ssm_id);
            return c;
        }
    }
    NodeId id = static_cast<NodeId>(nodes_.size());
    TreeNode child;
    child.token = token;
    child.parent = parent;
    child.proposals.push_back(ssm_id);
    child.depth = nodes_[parent].depth + 1;
    nodes_.push_back(std::move(child));
    nodes_[parent].children.push_back(id);
    return id;
}

std::vector<int>
TokenTree::pathTokens(NodeId id) const
{
    std::vector<int> path;
    for (NodeId n = id; n >= 0; n = nodes_[n].parent)
        path.push_back(nodes_[n].token);
    std::reverse(path.begin(), path.end());
    return path;
}

void
TokenTree::setSsmDistribution(NodeId id, int ssm_id,
                              std::vector<float> dist)
{
    SPECINFER_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size(),
                    "node id out of range");
    for (DistRecord &rec : dists_) {
        if (rec.node == id && rec.ssmId == ssm_id) {
            rec.dist = std::move(dist);
            return;
        }
    }
    dists_.push_back({id, ssm_id, std::move(dist)});
}

const std::vector<float> *
TokenTree::ssmDistribution(NodeId id, int ssm_id) const
{
    for (const DistRecord &rec : dists_)
        if (rec.node == id && rec.ssmId == ssm_id)
            return &rec.dist;
    return nullptr;
}

void
TokenTree::merge(const TokenTree &other)
{
    SPECINFER_CHECK(other.node(kRoot).token == node(kRoot).token,
                    "merged trees must share the root token");
    // Map other-node -> this-node, built in other's creation order
    // (topological, so parents are mapped before children).
    std::vector<NodeId> mapped(other.nodes_.size(), -1);
    mapped[kRoot] = kRoot;
    for (size_t i = 1; i < other.nodes_.size(); ++i) {
        const TreeNode &src = other.nodes_[i];
        NodeId parent_here = mapped[src.parent];
        SPECINFER_CHECK(parent_here >= 0, "merge parent not mapped");
        SPECINFER_CHECK(!src.proposals.empty(),
                        "merged node with no proposals");
        // Locate the grafted node, creating it (with no proposals
        // yet) if this tree lacks the path.
        NodeId here = -1;
        for (NodeId c : nodes_[parent_here].children) {
            if (nodes_[c].token == src.token) {
                here = c;
                break;
            }
        }
        if (here < 0) {
            here = static_cast<NodeId>(nodes_.size());
            TreeNode child;
            child.token = src.token;
            child.parent = parent_here;
            child.depth = nodes_[parent_here].depth + 1;
            nodes_.push_back(std::move(child));
            nodes_[parent_here].children.push_back(here);
        }
        // Proposal multisets union by per-SSM *max* multiplicity:
        // a proposal already present here is the same draw seen
        // again (re-merge / self-merge), and double-recording it
        // would make stochastic verification subtract that SSM's
        // distribution from the LLM residual twice for one draw.
        // Proposals from a distinct source union in untouched.
        std::vector<int> &dst = nodes_[here].proposals;
        for (size_t j = 0; j < src.proposals.size(); ++j) {
            const int ssm_id = src.proposals[j];
            size_t src_count = 0;
            for (size_t k = 0; k <= j; ++k)
                src_count += src.proposals[k] == ssm_id ? 1 : 0;
            size_t dst_count = 0;
            for (int p : dst)
                dst_count += p == ssm_id ? 1 : 0;
            if (dst_count < src_count)
                dst.push_back(ssm_id);
        }
        mapped[static_cast<NodeId>(i)] = here;
    }
    for (const DistRecord &rec : other.dists_) {
        if (ssmDistribution(mapped[rec.node], rec.ssmId) == nullptr)
            setSsmDistribution(mapped[rec.node], rec.ssmId, rec.dist);
    }
}

model::DecodeChunk
TokenTree::toChunk(int32_t root_parent) const
{
    model::DecodeChunk chunk;
    chunk.tokens.reserve(nodes_.size());
    chunk.parents.reserve(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
        chunk.tokens.push_back(nodes_[i].token);
        chunk.parents.push_back(i == 0 ? root_parent : nodes_[i].parent);
    }
    return chunk;
}

std::vector<std::vector<int>>
TokenTree::allPaths() const
{
    std::vector<std::vector<int>> paths;
    paths.reserve(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i)
        paths.push_back(pathTokens(static_cast<NodeId>(i)));
    return paths;
}

std::string
TokenTree::toAscii() const
{
    std::ostringstream oss;
    std::function<void(NodeId, std::string, bool)> walk =
        [&](NodeId id, std::string indent, bool last) {
            const TreeNode &n = nodes_[id];
            oss << indent;
            if (id != kRoot)
                oss << (last ? "`-- " : "|-- ");
            oss << "t" << n.token << " (node " << id;
            if (!n.proposals.empty()) {
                oss << ", ssm";
                for (int p : n.proposals)
                    oss << " " << p;
            }
            oss << ")\n";
            std::string next = indent;
            if (id != kRoot)
                next += last ? "    " : "|   ";
            for (size_t c = 0; c < n.children.size(); ++c)
                walk(n.children[c], next, c + 1 == n.children.size());
        };
    walk(kRoot, "", true);
    return oss.str();
}

} // namespace core
} // namespace specinfer
