/**
 * @file
 * Learning-based speculator (paper §3): drives one or more SSMs to
 * construct a speculated token tree for the current sequence, using
 * expansion-based construction per SSM and merge-based construction
 * across SSMs.
 */

#ifndef SPECINFER_CORE_SPECULATOR_H
#define SPECINFER_CORE_SPECULATOR_H

#include <vector>

#include "core/expansion.h"
#include "core/token_tree.h"
#include "model/sampler.h"
#include "model/transformer.h"
#include "util/rng.h"

namespace specinfer {
namespace core {

/** How candidate tokens are selected from an SSM's distribution. */
enum class SpeculationMode
{
    /** Deterministic top-k expansion; pairs with greedy verification. */
    TopK,
    /** i.i.d. samples from the SSM distribution; pairs with MSS /
     *  naive-sampling stochastic verification (Theorem 4.2 requires
     *  candidates to be genuine SSM samples). */
    Sampled,
};

/**
 * How many candidates to expand per frontier node at each step.
 *
 * Static follows the preset expansion config exactly (paper §3).
 * AdaptiveMass implements the paper's future-work direction:
 * expand a node's top tokens until their cumulative SSM probability
 * reaches a target mass (capped), so confident nodes stay narrow
 * and uncertain nodes branch wide at equal average tree size.
 */
enum class ExpansionPolicy
{
    Static,
    AdaptiveMass,
};

/** Speculator configuration. */
struct SpeculatorConfig
{
    ExpansionConfig expansion = ExpansionConfig::paperDefault();
    SpeculationMode mode = SpeculationMode::TopK;
    /** Distribution the SSM proposals are drawn from / scored by. */
    model::SamplingParams ssmSampling;

    /** Candidate-count policy per step. */
    ExpansionPolicy policy = ExpansionPolicy::Static;

    /** AdaptiveMass: stop expanding a node once its selected
     *  candidates hold this much SSM probability mass. */
    float adaptiveMass = 0.6f;

    /** AdaptiveMass: hard cap on candidates per node per step. */
    size_t adaptiveMaxWidth = 4;

    /** AdaptiveMass: hard cap on speculated nodes per tree (bounds
     *  KV-cache headroom; static trees are bounded by the config). */
    size_t maxTreeNodes = 64;

    /** Upper bound on speculated nodes per tree under this config
     *  (sizes per-request KV caches). */
    size_t nodeBudget() const;
};

/** Cost accounting for one speculation call. */
struct SpeculationCost
{
    size_t ssmTokensDecoded = 0;   ///< token-forwards across all SSMs
    size_t ssmForwardCalls = 0;    ///< chunks (kernel launches)
};

/**
 * Runs a pool of SSMs to produce merged speculated token trees.
 *
 * The speculator is stateless across requests; per-request SSM KV
 * caches are created with makeCaches() and passed into speculate().
 * Invariant maintained: on return, cache s holds exactly the tokens
 * of the verified sequence passed in (speculated rows rolled back),
 * so the next call only decodes newly verified tokens.
 */
class Speculator
{
  public:
    /**
     * @param ssms Non-owning SSM pool; index in this vector is the
     *             ssm_id recorded in tree proposals.
     * @param cfg Expansion and sampling configuration.
     */
    Speculator(std::vector<const model::Transformer *> ssms,
               SpeculatorConfig cfg);

    size_t ssmCount() const { return ssms_.size(); }
    const SpeculatorConfig &config() const { return cfg_; }

    /** Create per-request SSM caches (one per pool member). */
    std::vector<model::KvCache> makeCaches(size_t capacity) const;

    /**
     * Build a speculated token tree for the verified sequence `seq`.
     *
     * @param seq Current verified sequence (prompt + generated);
     *            must be non-empty. The tree root holds seq.back().
     * @param caches Per-SSM KV caches; each must hold a prefix of
     *            seq (at most seq.size() tokens).
     * @param rng Randomness for Sampled mode.
     * @param cost Optional cost accounting output (accumulated).
     */
    TokenTree speculate(const std::vector<int> &seq,
                        std::vector<model::KvCache> &caches,
                        util::Rng &rng,
                        SpeculationCost *cost = nullptr) const;

  private:
    TokenTree speculateOne(size_t ssm_id, const std::vector<int> &seq,
                           model::KvCache &cache, util::Rng &rng,
                           SpeculationCost *cost) const;

    std::vector<const model::Transformer *> ssms_;
    SpeculatorConfig cfg_;
};

} // namespace core
} // namespace specinfer

#endif // SPECINFER_CORE_SPECULATOR_H
