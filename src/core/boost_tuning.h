/**
 * @file
 * Collective boost-tuning of an SSM pool (paper §3, merge-based
 * token tree construction).
 *
 * The paper aligns a pool of SSMs with the LLM by adaptive boosting:
 * fine-tune one SSM, mark the corpus samples where it already agrees
 * with the LLM, then fine-tune the next SSM on the remaining
 * samples, and so on — producing a pool whose *aggregate* output
 * covers the LLM well. With no gradient training available here, the
 * "fine-tune one SSM" step is replaced by *selecting* the candidate
 * SSM (from a family of early-exit depths and head-noise variants)
 * that agrees with the LLM on the largest number of still-uncovered
 * samples; the mark-and-filter boosting loop is implemented
 * faithfully.
 */

#ifndef SPECINFER_CORE_BOOST_TUNING_H
#define SPECINFER_CORE_BOOST_TUNING_H

#include <cstddef>
#include <vector>

#include "model/transformer.h"
#include "util/rng.h"

namespace specinfer {
namespace core {

/** One next-token prediction task: a context and the LLM's choice. */
struct BoostSample
{
    std::vector<int> context;
    int llmToken;
};

/** Configuration of the boosting loop. */
struct BoostConfig
{
    /** Number of SSMs to place in the pool. */
    size_t poolSize = 2;

    /** Samples already covered are removed before scoring the next
     *  SSM (the paper's mark-and-filter step). */
    bool filterCovered = true;
};

/** Outcome of boost-tuning. */
struct BoostResult
{
    /** Indices into the candidate vector, in selection order. */
    std::vector<size_t> selected;

    /** Fraction of corpus samples covered by the aggregate pool
     *  (some candidate agrees with the LLM). */
    double aggregateCoverage = 0.0;

    /** Coverage of the single best candidate alone. */
    double bestSingleCoverage = 0.0;
};

/**
 * Build a next-token corpus by decoding dataset-style prompts with
 * the LLM (greedy), emitting one BoostSample per decoding position.
 *
 * @param llm The target model.
 * @param prompts Prompt set (e.g. from workload::PromptDataset).
 * @param tokens_per_prompt Positions sampled per prompt.
 */
std::vector<BoostSample>
buildBoostCorpus(const model::Transformer &llm,
                 const std::vector<std::vector<int>> &prompts,
                 size_t tokens_per_prompt);

/**
 * Per-candidate agreement bitmap: agrees[c][s] is true when
 * candidate c's greedy next token matches the LLM's on sample s.
 */
std::vector<std::vector<bool>>
agreementMatrix(const std::vector<const model::Transformer *> &candidates,
                const std::vector<BoostSample> &corpus);

/**
 * The boosting loop: greedily select cfg.poolSize candidates, each
 * chosen to maximize agreement on the samples not yet covered by
 * previously selected SSMs.
 */
BoostResult boostSelect(const std::vector<std::vector<bool>> &agrees,
                        const BoostConfig &cfg);

} // namespace core
} // namespace specinfer

#endif // SPECINFER_CORE_BOOST_TUNING_H
