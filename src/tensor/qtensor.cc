#include "tensor/qtensor.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/threadpool.h"

namespace specinfer {
namespace tensor {

QTensor::QTensor(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0),
      scales_(rows, 0.0f)
{
}

void
QTensor::reset(size_t rows, size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0);
    scales_.assign(rows, 0.0f);
}

void
quantizeRow(const float *row, size_t n, int8_t *q, float *scale)
{
    float peak = 0.0f;
    for (size_t c = 0; c < n; ++c)
        peak = std::max(peak, std::abs(row[c]));
    if (peak == 0.0f) {
        std::fill(q, q + n, int8_t{0});
        *scale = 0.0f;
        return;
    }
    // fakeQuantizeRows' grid verbatim: q_max = 127, scale computed
    // as one fp32 divide. |row[c] / scale| <= 127 * (1 + eps), so
    // round() never reaches 128; the clamp is pure defence and
    // cannot change a value the fake-quant grid would produce.
    const float s = peak / 127.0f;
    for (size_t c = 0; c < n; ++c) {
        const float r = std::round(row[c] / s);
        q[c] = static_cast<int8_t>(
            std::clamp(r, -127.0f, 127.0f));
    }
    *scale = s;
}

void
quantizeRows(const Tensor &t, QTensor &out)
{
    if (out.rows() != t.rows() || out.cols() != t.cols())
        out.reset(t.rows(), t.cols());
    util::ThreadPool::global().parallelFor(
        0, t.rows(), [&](size_t r) {
            quantizeRow(t.row(r), t.cols(), out.row(r),
                        out.scales() + r);
        });
}

Tensor
dequantize(const QTensor &q)
{
    Tensor out(q.rows(), q.cols());
    for (size_t r = 0; r < q.rows(); ++r) {
        const int8_t *src = q.row(r);
        const float s = q.scale(r);
        float *dst = out.row(r);
        // static_cast<float>(q) * s is the same fp32 product
        // fakeQuantizeRows computes as round(v / s) * s: the
        // rounded value is an exactly representable small integer,
        // so the int8 round trip loses nothing.
        for (size_t c = 0; c < q.cols(); ++c)
            dst[c] = static_cast<float>(src[c]) * s;
    }
    return out;
}

} // namespace tensor
} // namespace specinfer
