/**
 * @file
 * Numeric kernels for the transformer substrate.
 *
 * All kernels operate on raw float rows or on Tensor; none allocate
 * unless they return a fresh value. These are the CPU stand-ins for
 * the cuBLAS/FasterTransformer kernels the paper's system uses.
 */

#ifndef SPECINFER_TENSOR_OPS_H
#define SPECINFER_TENSOR_OPS_H

#include <cstddef>
#include <utility>
#include <vector>

#include "tensor/qtensor.h"
#include "tensor/tensor.h"

namespace specinfer {
namespace tensor {

/**
 * out = a * b, where a is [m x k] and b is [k x n].
 * @pre out has shape [m x n] and does not alias a or b.
 */
void matmul(const Tensor &a, const Tensor &b, Tensor &out);

/**
 * out = a * b^T, where a is [m x k] and b is [n x k].
 * Weight matrices are stored row-major as [out_dim x in_dim], so this
 * is the natural kernel for linear layers.
 * @pre out has shape [m x n] and does not alias a or b.
 */
void matmulTransposedB(const Tensor &a, const Tensor &b, Tensor &out);

/**
 * Batched bias-free linear layer into caller-owned storage:
 * out[i * out_stride + j] = dot(a.row(i), b.row(j)) for an [m x k]
 * activation matrix a and [n x k] weight matrix b. The strided
 * destination lets one GEMM write rows that live inside a larger
 * buffer (KV-cache rows, logits), fusing the per-token projection
 * loop of tree-based parallel decoding into a single cache-blocked,
 * row-parallel kernel.
 *
 * Bit-exactness contract: every output element is computed as
 * dotRow(a.row(i), b.row(j), k) regardless of blocking or thread
 * count, so results are identical to the scalar matvec path.
 *
 * @pre out_stride >= b.rows(); out does not alias a or b.
 */
void matmulTransposedBInto(const Tensor &a, const Tensor &b,
                           float *out, size_t out_stride);

/**
 * Integer variant of matmulTransposedBInto: both operands are int8
 * with per-row scales, and out[i * out_stride + j] =
 * float(dotRowI8(a.row(i), b.row(j), k)) * (a.scale(i) * b.scale(j)).
 *
 * Bit-exactness contract, stronger than the float kernels': the
 * int32 dot is exact, so any blocking, thread split, or ISA (scalar
 * vs the AVX2 maddubs tile) yields identical integers, and the one
 * float expression above is fixed — results are bit-identical across
 * SPECINFER_THREADS and dispatch by construction.
 *
 * @pre a.cols() == b.cols(); out_stride >= b.rows(); out does not
 *      alias a or b.
 */
void matmulTransposedBInto(const QTensor &a, const QTensor &b,
                           float *out, size_t out_stride);

/** Dense-output wrapper. @pre out has shape [a.rows() x b.rows()]. */
void matmulTransposedB(const QTensor &a, const QTensor &b, Tensor &out);

/**
 * Rectangular slice of the transposed-B GEMM, the primitive behind
 * tensor-parallel sharding (src/parallel): for weight rows j in
 * [j0, j1) and the k-slice [k0, k1),
 *
 *   out[i * out_stride + (j - j0)] =
 *       dotRow(a.row(i) + k0, b.row(j) + k0, k1 - k0)
 *
 * A column-parallel layer takes the full k range and a j shard (the
 * rank's output slab, dense with width j1 - j0); a row-parallel
 * layer takes the full j range and a k shard (one canonical reduce
 * block's partial product). k0 == k1 is legal and writes 0.0f
 * (dotRow over zero elements) — empty canonical blocks must still
 * contribute a well-defined partial to the ordered reduction.
 *
 * Bit-exactness contract: each element is one dotRow over the
 * slice, identical bits regardless of blocking, thread count, or
 * ISA; with the full k range it equals the unsliced kernel's
 * element exactly. The full-matrix call (k0 == 0, k1 == k, j0 == 0,
 * j1 == n) delegates to matmulTransposedBInto, so tp=1 callers keep
 * the legacy tiles and threading policy.
 *
 * @pre k0 <= k1 <= a.cols(); j0 <= j1 <= b.rows();
 *      out_stride >= j1 - j0; out does not alias a or b.
 */
void matmulTransposedBSlice(const Tensor &a, const Tensor &b,
                            size_t k0, size_t k1, size_t j0, size_t j1,
                            float *out, size_t out_stride);

/**
 * Integer variant of matmulTransposedBSlice: the int32 dot runs over
 * the k-slice [k0, k1) and the one shared float expression applies
 * the full per-row scales,
 *
 *   out[i * out_stride + (j - j0)] =
 *       float(dotRowI8(a.row(i) + k0, b.row(j) + k0, k1 - k0))
 *           * (a.scale(i) * b.scale(j)).
 *
 * The slice dot is exact integer math, so results are bit-identical
 * across blocking, threads, and dispatch — and a sum of k-slice
 * partials folded in canonical order is the sharded int8 path's
 * deterministic replacement for the full-k dot.
 */
void matmulTransposedBSlice(const QTensor &a, const QTensor &b,
                            size_t k0, size_t k1, size_t j0, size_t j1,
                            float *out, size_t out_stride);

/**
 * out_row = x_row * w^T for one row: y[j] = sum_i x[i] * w[j][i].
 * @param x Input vector of length w.cols().
 * @param w Weight matrix [out_dim x in_dim].
 * @param out Output vector of length w.rows().
 */
void matvecTransposed(const float *x, const Tensor &w, float *out);

/** In-place numerically-stable softmax over a length-n row. */
void softmaxRow(float *row, size_t n);

/**
 * In-place softmax with temperature; temperature <= 0 degenerates to
 * a one-hot argmax distribution.
 */
void softmaxRowTemperature(float *row, size_t n, float temperature);

/**
 * RMSNorm: out[i] = x[i] / rms(x) * gain[i].
 * out may alias x.
 */
void rmsnormRow(const float *x, const float *gain, size_t n, float *out,
                float eps = 1.0e-5f);

/** SiLU activation applied elementwise in place. */
void siluRow(float *row, size_t n);

/** GELU (tanh approximation) applied elementwise in place. */
void geluRow(float *row, size_t n);

/** out[i] += a[i] for a length-n row. */
void addRow(float *out, const float *a, size_t n);

/** out[i] *= s for a length-n row. */
void scaleRow(float *row, size_t n, float s);

/** out[i] = a[i] * b[i] for a length-n row. */
void mulRows(float *out, const float *a, const float *b, size_t n);

/**
 * Dot product of two length-n rows.
 *
 * Eight independent accumulators break the serial fadd dependency
 * chain (and give the compiler vectorizable lanes without
 * -ffast-math). The reduction order is a pure function of n, so
 * every caller — batched GEMM, scalar matvec, attention scores —
 * produces identical bits for identical inputs. Inline because the
 * tree-attention score loop issues tens of thousands of short
 * (d_head-long) dots per forward pass.
 */
inline float
dotRow(const float *a, const float *b, size_t n)
{
    float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
    float a4 = 0.0f, a5 = 0.0f, a6 = 0.0f, a7 = 0.0f;
    size_t i = 0;
    const size_t n8 = n & ~size_t{7};
    for (; i < n8; i += 8) {
        a0 += a[i] * b[i];
        a1 += a[i + 1] * b[i + 1];
        a2 += a[i + 2] * b[i + 2];
        a3 += a[i + 3] * b[i + 3];
        a4 += a[i + 4] * b[i + 4];
        a5 += a[i + 5] * b[i + 5];
        a6 += a[i + 6] * b[i + 6];
        a7 += a[i + 7] * b[i + 7];
    }
    float acc = ((a0 + a1) + (a2 + a3)) + ((a4 + a5) + (a6 + a7));
    for (; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

/**
 * Apply rotary position embeddings (RoPE) in place to a row of
 * n_heads * d_head floats laid out head-major.
 *
 * @param row Query or key row.
 * @param n_heads Number of attention heads in the row.
 * @param d_head Per-head dimension (must be even).
 * @param position Absolute token position.
 * @param theta Base frequency (LLaMA uses 10000).
 */
void ropeRow(float *row, size_t n_heads, size_t d_head, size_t position,
             float theta = 10000.0f);

/**
 * Precompute the RoPE rotation table for one position: cos_sin holds
 * d_head floats, interleaved (cos, sin) per even/odd pair, shared by
 * every head. Computed with exactly the ropeRow() formula, so
 * ropeRowCached(row, table) is bit-identical to ropeRow(row, pos) —
 * the batched forward path hoists the table per token because
 * positions do not change across layers or between K and Q.
 */
void ropeCosSin(size_t d_head, size_t position, float theta,
                float *cos_sin);

/** Apply RoPE from a precomputed ropeCosSin() table, in place. */
void ropeRowCached(float *row, size_t n_heads, size_t d_head,
                   const float *cos_sin);

/** Index of the maximum element (first on ties). @pre n > 0 */
size_t argmaxRow(const float *row, size_t n);

/**
 * Indices of the k largest elements in descending value order.
 * @pre 0 < k <= n.
 */
std::vector<size_t> topkRow(const float *row, size_t n, size_t k);

/** Total variation distance between two length-n distributions. */
double totalVariation(const float *p, const float *q, size_t n);

} // namespace tensor
} // namespace specinfer

#endif // SPECINFER_TENSOR_OPS_H
