#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/threadpool.h"

namespace specinfer {
namespace tensor {

namespace {

/**
 * Rows of the B (weight) matrix processed per block in the
 * transposed-B GEMMs. 32 rows x 512 floats (the largest k in the
 * model zoo) is 64 KiB — the block B rows stay L1/L2-resident while
 * being reused across every activation row, which is where batching
 * an m-token chunk beats m independent matvec sweeps.
 */
constexpr size_t kGemmRowBlock = 32;

/**
 * One GEMM tile: out rows [i_lo, i_hi) x weight rows [jb, j_hi) of
 * a * b^T over raw base pointers (the j loop is a dot per ~10 ns,
 * so even a bounds-checked row() call per iteration is measurable).
 * Element values are dotRow() over full k — tiling only reorders
 * which elements are computed when, never how one is reduced.
 */
void
gemmBlockGeneric(const float *a_base, const float *b_base, float *out,
                 size_t out_stride, size_t k, size_t i_lo, size_t i_hi,
                 size_t jb, size_t j_hi)
{
    for (size_t i = i_lo; i < i_hi; ++i) {
        const float *a_row = a_base + i * k;
        float *out_row = out + i * out_stride;
        for (size_t j = jb; j < j_hi; ++j)
            out_row[j] = dotRow(a_row, b_base + j * k, k);
    }
}

using GemmBlockFn = void (*)(const float *, const float *, float *,
                             size_t, size_t, size_t, size_t, size_t,
                             size_t);

#if defined(__x86_64__) && defined(__GNUC__)

/**
 * dotRow() recompiled for AVX2. The body is a literal restatement of
 * the header kernel: the eight named accumulators become the eight
 * lanes of one 256-bit vector and the explicit reduction tree is
 * preserved, so the instruction selection changes but the IEEE
 * operation DAG — and therefore every output bit — does not.
 * (FMA is deliberately left off the target: contraction would fuse
 * mul+add and change results.)
 */
__attribute__((target("avx2"), always_inline)) inline float
dotRowAvx2(const float *a, const float *b, size_t n)
{
    float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
    float a4 = 0.0f, a5 = 0.0f, a6 = 0.0f, a7 = 0.0f;
    size_t i = 0;
    const size_t n8 = n & ~size_t{7};
    for (; i < n8; i += 8) {
        a0 += a[i] * b[i];
        a1 += a[i + 1] * b[i + 1];
        a2 += a[i + 2] * b[i + 2];
        a3 += a[i + 3] * b[i + 3];
        a4 += a[i + 4] * b[i + 4];
        a5 += a[i + 5] * b[i + 5];
        a6 += a[i + 6] * b[i + 6];
        a7 += a[i + 7] * b[i + 7];
    }
    float acc = ((a0 + a1) + (a2 + a3)) + ((a4 + a5) + (a6 + a7));
    for (; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

__attribute__((target("avx2"))) void
gemmBlockAvx2(const float *a_base, const float *b_base, float *out,
              size_t out_stride, size_t k, size_t i_lo, size_t i_hi,
              size_t jb, size_t j_hi)
{
    for (size_t i = i_lo; i < i_hi; ++i) {
        const float *a_row = a_base + i * k;
        float *out_row = out + i * out_stride;
        for (size_t j = jb; j < j_hi; ++j)
            out_row[j] = dotRowAvx2(a_row, b_base + j * k, k);
    }
}

#endif // x86_64 && GNUC

/**
 * Dispatch once per process: the AVX2 tile computes bit-identical
 * results (see dotRowAvx2), so the choice of ISA never changes
 * output, only throughput.
 */
GemmBlockFn
gemmBlock()
{
#if defined(__x86_64__) && defined(__GNUC__)
    static const GemmBlockFn fn = __builtin_cpu_supports("avx2")
                                      ? gemmBlockAvx2
                                      : gemmBlockGeneric;
#else
    static const GemmBlockFn fn = gemmBlockGeneric;
#endif
    return fn;
}

/**
 * out rows [i_lo, i_hi) of a * b^T, blocked over b rows so a block
 * of weights is reused across all activation rows before moving on.
 */
void
gemmTransposedBRows(const Tensor &a, const Tensor &b, float *out,
                    size_t out_stride, size_t i_lo, size_t i_hi)
{
    const size_t k = a.cols(), n = b.rows();
    const GemmBlockFn block = gemmBlock();
    for (size_t jb = 0; jb < n; jb += kGemmRowBlock) {
        const size_t j_hi = std::min(jb + kGemmRowBlock, n);
        block(a.data(), b.data(), out, out_stride, k, i_lo, i_hi,
              jb, j_hi);
    }
}

} // namespace

void
matmul(const Tensor &a, const Tensor &b, Tensor &out)
{
    SPECINFER_CHECK(a.cols() == b.rows(),
                    "matmul shape mismatch " << a.shapeString() << " * "
                                             << b.shapeString());
    SPECINFER_CHECK(out.rows() == a.rows() && out.cols() == b.cols(),
                    "matmul output shape mismatch");
    const size_t k = a.cols(), n = b.cols();
    // Row-parallel; per-element accumulation stays in ascending kk
    // order, so results match the serial kernel bit for bit.
    util::ThreadPool::global().parallelFor(
        0, a.rows(), [&](size_t i) {
            float *out_row = out.row(i);
            std::fill(out_row, out_row + n, 0.0f);
            const float *a_row = a.row(i);
            for (size_t kk = 0; kk < k; ++kk) {
                const float av = a_row[kk];
                const float *b_row = b.row(kk);
                for (size_t j = 0; j < n; ++j)
                    out_row[j] += av * b_row[j];
            }
        });
}

void
matmulTransposedBInto(const Tensor &a, const Tensor &b, float *out,
                      size_t out_stride)
{
    SPECINFER_CHECK(a.cols() == b.cols(),
                    "matmulT shape mismatch " << a.shapeString() << " * "
                                              << b.shapeString() << "^T");
    SPECINFER_CHECK(out_stride >= b.rows(),
                    "matmulT output stride " << out_stride
                                             << " narrower than "
                                             << b.rows() << " columns");
    const size_t m = a.rows(), n = b.rows();
    util::ThreadPool &pool = util::ThreadPool::global();
    if (m >= pool.threads()) {
        // Enough activation rows to split: one contiguous row range
        // per worker, weight blocks reused within each range.
        pool.parallelFor(0, pool.threads(), [&](size_t w) {
            const size_t i_lo = w * m / pool.threads();
            const size_t i_hi = (w + 1) * m / pool.threads();
            gemmTransposedBRows(a, b, out, out_stride, i_lo, i_hi);
        });
        return;
    }
    // Thin activations (down to the m=1 matvec): split the weight
    // rows across workers instead.
    const size_t n_blocks = (n + kGemmRowBlock - 1) / kGemmRowBlock;
    const GemmBlockFn block = gemmBlock();
    pool.parallelFor(0, n_blocks, [&](size_t blk) {
        const size_t jb = blk * kGemmRowBlock;
        const size_t j_hi = std::min(jb + kGemmRowBlock, n);
        block(a.data(), b.data(), out, out_stride, a.cols(), 0, m,
              jb, j_hi);
    });
}

void
matmulTransposedB(const Tensor &a, const Tensor &b, Tensor &out)
{
    SPECINFER_CHECK(out.rows() == a.rows() && out.cols() == b.rows(),
                    "matmulT output shape mismatch");
    matmulTransposedBInto(a, b, out.data(), out.cols());
}

void
matvecTransposed(const float *x, const Tensor &w, float *out)
{
    const size_t k = w.cols(), n = w.rows();
    const float *w_base = w.data();
    for (size_t j = 0; j < n; ++j)
        out[j] = dotRow(x, w_base + j * k, k);
}

void
softmaxRow(float *row, size_t n)
{
    SPECINFER_CHECK(n > 0, "softmax of empty row");
    float peak = row[0];
    for (size_t i = 1; i < n; ++i)
        peak = std::max(peak, row[i]);
    float total = 0.0f;
    for (size_t i = 0; i < n; ++i) {
        row[i] = std::exp(row[i] - peak);
        total += row[i];
    }
    const float inv = 1.0f / total;
    for (size_t i = 0; i < n; ++i)
        row[i] *= inv;
}

void
softmaxRowTemperature(float *row, size_t n, float temperature)
{
    SPECINFER_CHECK(n > 0, "softmax of empty row");
    if (temperature <= 0.0f) {
        size_t best = argmaxRow(row, n);
        std::fill(row, row + n, 0.0f);
        row[best] = 1.0f;
        return;
    }
    const float inv_t = 1.0f / temperature;
    for (size_t i = 0; i < n; ++i)
        row[i] *= inv_t;
    softmaxRow(row, n);
}

void
rmsnormRow(const float *x, const float *gain, size_t n, float *out,
           float eps)
{
    double ss = 0.0;
    for (size_t i = 0; i < n; ++i)
        ss += static_cast<double>(x[i]) * static_cast<double>(x[i]);
    const float inv_rms = 1.0f / std::sqrt(
        static_cast<float>(ss / static_cast<double>(n)) + eps);
    for (size_t i = 0; i < n; ++i)
        out[i] = x[i] * inv_rms * gain[i];
}

void
siluRow(float *row, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        row[i] = row[i] / (1.0f + std::exp(-row[i]));
}

void
geluRow(float *row, size_t n)
{
    constexpr float k = 0.7978845608f; // sqrt(2/pi)
    for (size_t i = 0; i < n; ++i) {
        float x = row[i];
        row[i] = 0.5f * x *
                 (1.0f + std::tanh(k * (x + 0.044715f * x * x * x)));
    }
}

void
addRow(float *out, const float *a, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] += a[i];
}

void
scaleRow(float *row, size_t n, float s)
{
    for (size_t i = 0; i < n; ++i)
        row[i] *= s;
}

void
mulRows(float *out, const float *a, const float *b, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = a[i] * b[i];
}

void
ropeCosSin(size_t d_head, size_t position, float theta,
           float *cos_sin)
{
    SPECINFER_CHECK(d_head % 2 == 0, "RoPE requires even head dim");
    for (size_t i = 0; i < d_head; i += 2) {
        float freq = std::pow(
            theta, -static_cast<float>(i) /
                   static_cast<float>(d_head));
        float angle = static_cast<float>(position) * freq;
        cos_sin[i] = std::cos(angle);
        cos_sin[i + 1] = std::sin(angle);
    }
}

void
ropeRowCached(float *row, size_t n_heads, size_t d_head,
              const float *cos_sin)
{
    for (size_t h = 0; h < n_heads; ++h) {
        float *head = row + h * d_head;
        for (size_t i = 0; i < d_head; i += 2) {
            const float c = cos_sin[i], s = cos_sin[i + 1];
            float x0 = head[i], x1 = head[i + 1];
            head[i] = x0 * c - x1 * s;
            head[i + 1] = x0 * s + x1 * c;
        }
    }
}

void
ropeRow(float *row, size_t n_heads, size_t d_head, size_t position,
        float theta)
{
    SPECINFER_CHECK(d_head % 2 == 0, "RoPE requires even head dim");
    for (size_t h = 0; h < n_heads; ++h) {
        float *head = row + h * d_head;
        for (size_t i = 0; i < d_head; i += 2) {
            float freq = std::pow(
                theta, -static_cast<float>(i) /
                       static_cast<float>(d_head));
            float angle = static_cast<float>(position) * freq;
            float c = std::cos(angle), s = std::sin(angle);
            float x0 = head[i], x1 = head[i + 1];
            head[i] = x0 * c - x1 * s;
            head[i + 1] = x0 * s + x1 * c;
        }
    }
}

size_t
argmaxRow(const float *row, size_t n)
{
    SPECINFER_CHECK(n > 0, "argmax of empty row");
    size_t best = 0;
    for (size_t i = 1; i < n; ++i)
        if (row[i] > row[best])
            best = i;
    return best;
}

std::vector<size_t>
topkRow(const float *row, size_t n, size_t k)
{
    SPECINFER_CHECK(k > 0 && k <= n, "topk with k=" << k << ", n=" << n);
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i)
        idx[i] = i;
    std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                      [row](size_t a, size_t b) {
                          if (row[a] != row[b])
                              return row[a] > row[b];
                          return a < b;
                      });
    idx.resize(k);
    return idx;
}

double
totalVariation(const float *p, const float *q, size_t n)
{
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i)
        acc += std::abs(static_cast<double>(p[i]) -
                        static_cast<double>(q[i]));
    return 0.5 * acc;
}

} // namespace tensor
} // namespace specinfer
