#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include "util/logging.h"
#include "util/threadpool.h"

namespace specinfer {
namespace tensor {

namespace {

/**
 * Rows of the B (weight) matrix processed per block in the
 * transposed-B GEMMs. 32 rows x 512 floats (the largest k in the
 * model zoo) is 64 KiB — the block B rows stay L1/L2-resident while
 * being reused across every activation row, which is where batching
 * an m-token chunk beats m independent matvec sweeps.
 */
constexpr size_t kGemmRowBlock = 32;

/**
 * One GEMM tile: out rows [i_lo, i_hi) x weight rows [jb, j_hi) of
 * a * b^T over raw base pointers (the j loop is a dot per ~10 ns,
 * so even a bounds-checked row() call per iteration is measurable).
 * Element values are dotRow() over full k — tiling only reorders
 * which elements are computed when, never how one is reduced.
 */
void
gemmBlockGeneric(const float *a_base, const float *b_base, float *out,
                 size_t out_stride, size_t k, size_t i_lo, size_t i_hi,
                 size_t jb, size_t j_hi)
{
    for (size_t i = i_lo; i < i_hi; ++i) {
        const float *a_row = a_base + i * k;
        float *out_row = out + i * out_stride;
        for (size_t j = jb; j < j_hi; ++j)
            out_row[j] = dotRow(a_row, b_base + j * k, k);
    }
}

using GemmBlockFn = void (*)(const float *, const float *, float *,
                             size_t, size_t, size_t, size_t, size_t,
                             size_t);

#if defined(__x86_64__) && defined(__GNUC__)

/**
 * dotRow() recompiled for AVX2. The body is a literal restatement of
 * the header kernel: the eight named accumulators become the eight
 * lanes of one 256-bit vector and the explicit reduction tree is
 * preserved, so the instruction selection changes but the IEEE
 * operation DAG — and therefore every output bit — does not.
 * (FMA is deliberately left off the target: contraction would fuse
 * mul+add and change results.)
 */
__attribute__((target("avx2"), always_inline)) inline float
dotRowAvx2(const float *a, const float *b, size_t n)
{
    float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
    float a4 = 0.0f, a5 = 0.0f, a6 = 0.0f, a7 = 0.0f;
    size_t i = 0;
    const size_t n8 = n & ~size_t{7};
    for (; i < n8; i += 8) {
        a0 += a[i] * b[i];
        a1 += a[i + 1] * b[i + 1];
        a2 += a[i + 2] * b[i + 2];
        a3 += a[i + 3] * b[i + 3];
        a4 += a[i + 4] * b[i + 4];
        a5 += a[i + 5] * b[i + 5];
        a6 += a[i + 6] * b[i + 6];
        a7 += a[i + 7] * b[i + 7];
    }
    float acc = ((a0 + a1) + (a2 + a3)) + ((a4 + a5) + (a6 + a7));
    for (; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

__attribute__((target("avx2"))) void
gemmBlockAvx2(const float *a_base, const float *b_base, float *out,
              size_t out_stride, size_t k, size_t i_lo, size_t i_hi,
              size_t jb, size_t j_hi)
{
    for (size_t i = i_lo; i < i_hi; ++i) {
        const float *a_row = a_base + i * k;
        float *out_row = out + i * out_stride;
        for (size_t j = jb; j < j_hi; ++j)
            out_row[j] = dotRowAvx2(a_row, b_base + j * k, k);
    }
}

#endif // x86_64 && GNUC

/**
 * Dispatch once per process: the AVX2 tile computes bit-identical
 * results (see dotRowAvx2), so the choice of ISA never changes
 * output, only throughput.
 */
GemmBlockFn
gemmBlock()
{
#if defined(__x86_64__) && defined(__GNUC__)
    static const GemmBlockFn fn = __builtin_cpu_supports("avx2")
                                      ? gemmBlockAvx2
                                      : gemmBlockGeneric;
#else
    static const GemmBlockFn fn = gemmBlockGeneric;
#endif
    return fn;
}

/**
 * One int8 GEMM tile, scalar reference. Every element is the exact
 * int32 dot dotRowI8() scaled by the two per-row fp32 scales — the
 * single float expression all int8 tiles share. Because the integer
 * dot is exact, tiling and threading can never change a bit.
 */
void
gemmBlockI8Generic(const int8_t *a_base, const float *a_scales,
                   const int8_t *b_base, const float *b_scales,
                   float *out, size_t out_stride, size_t k,
                   size_t i_lo, size_t i_hi, size_t jb, size_t j_hi)
{
    for (size_t i = i_lo; i < i_hi; ++i) {
        const int8_t *a_row = a_base + i * k;
        const float sa = a_scales[i];
        float *out_row = out + i * out_stride;
        for (size_t j = jb; j < j_hi; ++j) {
            const int32_t acc = dotRowI8(a_row, b_base + j * k, k);
            out_row[j] = static_cast<float>(acc) * (sa * b_scales[j]);
        }
    }
}

using GemmBlockI8Fn = void (*)(const int8_t *, const float *,
                               const int8_t *, const float *, float *,
                               size_t, size_t, size_t, size_t, size_t,
                               size_t);

#if defined(__x86_64__) && defined(__GNUC__)

/**
 * dotRowI8() on AVX2: per 32 bytes, maddubs(|a|, sign(b, a)) forms
 * the 16 pairwise i16 sums of a[i]*b[i] — quants are in [-127, 127],
 * so each pair sum is at most 2 * 127 * 127 = 32258 < 32767 and the
 * saturating maddubs cannot actually saturate — then madd(., 1)
 * widens to i32 and accumulates. Integer adds are associative, so
 * any horizontal-sum order equals the scalar loop exactly; the
 * shuffle reduction here needs no memory round trip.
 */
__attribute__((target("avx2"), always_inline)) inline __m256i
fmaI8Avx2(__m256i acc, __m256i abs_a, __m256i va, const int8_t *b)
{
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(b));
    const __m256i sb = _mm256_sign_epi8(vb, va);
    const __m256i prod16 = _mm256_maddubs_epi16(abs_a, sb);
    return _mm256_add_epi32(
        acc, _mm256_madd_epi16(prod16, _mm256_set1_epi16(1)));
}

__attribute__((target("avx2"), always_inline)) inline int32_t
hsumI8Avx2(__m256i acc)
{
    const __m128i s2 =
        _mm_add_epi32(_mm256_castsi256_si128(acc),
                      _mm256_extracti128_si256(acc, 1));
    const __m128i s1 = _mm_add_epi32(s2, _mm_shuffle_epi32(s2, 0x4E));
    const __m128i s0 = _mm_add_epi32(s1, _mm_shuffle_epi32(s1, 0xB1));
    return _mm_cvtsi128_si32(s0);
}

__attribute__((target("avx2"), always_inline)) inline int32_t
dotRowI8Avx2(const int8_t *a, const int8_t *b, size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    size_t i = 0;
    const size_t n32 = n & ~size_t{31};
    for (; i < n32; i += 32) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        acc = fmaI8Avx2(acc, _mm256_abs_epi8(va), va, b + i);
    }
    int32_t total = hsumI8Avx2(acc);
    for (; i < n; ++i)
        total += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
    return total;
}

/**
 * The throughput shape: four weight rows per pass so each activation
 * load (and its abs) is amortized 4x, with four independent integer
 * accumulators. The final element expression is the same
 * float(acc) * (sa * sb) every int8 tile shares; everything upstream
 * of it is exact integer math, so this blocking is bit-identical to
 * the scalar reference by construction.
 */
__attribute__((target("avx2"))) void
gemmBlockI8Avx2(const int8_t *a_base, const float *a_scales,
                const int8_t *b_base, const float *b_scales,
                float *out, size_t out_stride, size_t k,
                size_t i_lo, size_t i_hi, size_t jb, size_t j_hi)
{
    for (size_t i = i_lo; i < i_hi; ++i) {
        const int8_t *a_row = a_base + i * k;
        const float sa = a_scales[i];
        float *out_row = out + i * out_stride;
        const size_t k32 = k & ~size_t{31};
        size_t j = jb;
        for (; j + 4 <= j_hi; j += 4) {
            const int8_t *b0 = b_base + j * k;
            const int8_t *b1 = b0 + k;
            const int8_t *b2 = b1 + k;
            const int8_t *b3 = b2 + k;
            __m256i acc0 = _mm256_setzero_si256();
            __m256i acc1 = _mm256_setzero_si256();
            __m256i acc2 = _mm256_setzero_si256();
            __m256i acc3 = _mm256_setzero_si256();
            size_t kk = 0;
            for (; kk < k32; kk += 32) {
                const __m256i va = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(a_row + kk));
                const __m256i abs_a = _mm256_abs_epi8(va);
                acc0 = fmaI8Avx2(acc0, abs_a, va, b0 + kk);
                acc1 = fmaI8Avx2(acc1, abs_a, va, b1 + kk);
                acc2 = fmaI8Avx2(acc2, abs_a, va, b2 + kk);
                acc3 = fmaI8Avx2(acc3, abs_a, va, b3 + kk);
            }
            // hadd tree: all four accumulators reduce to one
            // [t0 t1 t2 t3] vector in 5 integer ops (exact, so
            // still bit-identical to the scalar reference).
            const __m256i h01 = _mm256_hadd_epi32(acc0, acc1);
            const __m256i h23 = _mm256_hadd_epi32(acc2, acc3);
            const __m256i h = _mm256_hadd_epi32(h01, h23);
            __m128i t4 =
                _mm_add_epi32(_mm256_castsi256_si128(h),
                              _mm256_extracti128_si256(h, 1));
            if (kk < k) {
                alignas(16) int32_t t[4];
                _mm_store_si128(reinterpret_cast<__m128i *>(t), t4);
                for (; kk < k; ++kk) {
                    const int32_t av = a_row[kk];
                    t[0] += av * static_cast<int32_t>(b0[kk]);
                    t[1] += av * static_cast<int32_t>(b1[kk]);
                    t[2] += av * static_cast<int32_t>(b2[kk]);
                    t[3] += av * static_cast<int32_t>(b3[kk]);
                }
                t4 = _mm_load_si128(
                    reinterpret_cast<const __m128i *>(t));
            }
            // Per lane this is exactly float(acc) * (sa * sb):
            // cvtepi32->ps is the scalar int->float conversion and
            // the two muls match the scalar expression's order.
            const __m128 scales = _mm_mul_ps(
                _mm_set1_ps(sa), _mm_loadu_ps(b_scales + j));
            _mm_storeu_ps(out_row + j,
                          _mm_mul_ps(_mm_cvtepi32_ps(t4), scales));
        }
        for (; j < j_hi; ++j) {
            const int32_t acc = dotRowI8Avx2(a_row, b_base + j * k, k);
            out_row[j] = static_cast<float>(acc) * (sa * b_scales[j]);
        }
    }
}

#endif // x86_64 && GNUC

/** One-time int8 tile dispatch, mirroring gemmBlock(). */
GemmBlockI8Fn
gemmBlockI8()
{
#if defined(__x86_64__) && defined(__GNUC__)
    static const GemmBlockI8Fn fn = __builtin_cpu_supports("avx2")
                                        ? gemmBlockI8Avx2
                                        : gemmBlockI8Generic;
#else
    static const GemmBlockI8Fn fn = gemmBlockI8Generic;
#endif
    return fn;
}

/**
 * One slice-GEMM tile: activation rows [i_lo, i_hi) x local weight
 * rows [jb, j_hi), with explicit row strides so the dot can run over
 * a k-slice of rows that are wider than the slice (a_base/b_base are
 * pre-offset to the slice start; local weight row jj lives at
 * b_base + jj * b_stride). Element values are dotRow over the slice.
 */
void
gemmSliceGeneric(const float *a_base, size_t a_stride,
                 const float *b_base, size_t b_stride, float *out,
                 size_t out_stride, size_t len, size_t i_lo,
                 size_t i_hi, size_t jb, size_t j_hi)
{
    for (size_t i = i_lo; i < i_hi; ++i) {
        const float *a_row = a_base + i * a_stride;
        float *out_row = out + i * out_stride;
        for (size_t j = jb; j < j_hi; ++j)
            out_row[j] = dotRow(a_row, b_base + j * b_stride, len);
    }
}

using GemmSliceFn = void (*)(const float *, size_t, const float *,
                             size_t, float *, size_t, size_t, size_t,
                             size_t, size_t, size_t);

#if defined(__x86_64__) && defined(__GNUC__)

__attribute__((target("avx2"))) void
gemmSliceAvx2(const float *a_base, size_t a_stride,
              const float *b_base, size_t b_stride, float *out,
              size_t out_stride, size_t len, size_t i_lo, size_t i_hi,
              size_t jb, size_t j_hi)
{
    for (size_t i = i_lo; i < i_hi; ++i) {
        const float *a_row = a_base + i * a_stride;
        float *out_row = out + i * out_stride;
        for (size_t j = jb; j < j_hi; ++j)
            out_row[j] = dotRowAvx2(a_row, b_base + j * b_stride, len);
    }
}

#endif // x86_64 && GNUC

/** One-time slice-tile dispatch, mirroring gemmBlock(). */
GemmSliceFn
gemmSlice()
{
#if defined(__x86_64__) && defined(__GNUC__)
    static const GemmSliceFn fn = __builtin_cpu_supports("avx2")
                                      ? gemmSliceAvx2
                                      : gemmSliceGeneric;
#else
    static const GemmSliceFn fn = gemmSliceGeneric;
#endif
    return fn;
}

/** Int8 slice tile, scalar reference: exact slice dot, one shared
 *  float expression (see matmulTransposedBSlice header contract). */
void
gemmSliceI8Generic(const int8_t *a_base, size_t a_stride,
                   const float *a_scales, const int8_t *b_base,
                   size_t b_stride, const float *b_scales, float *out,
                   size_t out_stride, size_t len, size_t i_lo,
                   size_t i_hi, size_t jb, size_t j_hi)
{
    for (size_t i = i_lo; i < i_hi; ++i) {
        const int8_t *a_row = a_base + i * a_stride;
        const float sa = a_scales[i];
        float *out_row = out + i * out_stride;
        for (size_t j = jb; j < j_hi; ++j) {
            const int32_t acc =
                dotRowI8(a_row, b_base + j * b_stride, len);
            out_row[j] = static_cast<float>(acc) * (sa * b_scales[j]);
        }
    }
}

using GemmSliceI8Fn = void (*)(const int8_t *, size_t, const float *,
                               const int8_t *, size_t, const float *,
                               float *, size_t, size_t, size_t, size_t,
                               size_t, size_t);

#if defined(__x86_64__) && defined(__GNUC__)

__attribute__((target("avx2"))) void
gemmSliceI8Avx2(const int8_t *a_base, size_t a_stride,
                const float *a_scales, const int8_t *b_base,
                size_t b_stride, const float *b_scales, float *out,
                size_t out_stride, size_t len, size_t i_lo,
                size_t i_hi, size_t jb, size_t j_hi)
{
    for (size_t i = i_lo; i < i_hi; ++i) {
        const int8_t *a_row = a_base + i * a_stride;
        const float sa = a_scales[i];
        float *out_row = out + i * out_stride;
        for (size_t j = jb; j < j_hi; ++j) {
            const int32_t acc =
                dotRowI8Avx2(a_row, b_base + j * b_stride, len);
            out_row[j] = static_cast<float>(acc) * (sa * b_scales[j]);
        }
    }
}

#endif // x86_64 && GNUC

GemmSliceI8Fn
gemmSliceI8()
{
#if defined(__x86_64__) && defined(__GNUC__)
    static const GemmSliceI8Fn fn = __builtin_cpu_supports("avx2")
                                        ? gemmSliceI8Avx2
                                        : gemmSliceI8Generic;
#else
    static const GemmSliceI8Fn fn = gemmSliceI8Generic;
#endif
    return fn;
}

/**
 * out rows [i_lo, i_hi) of a * b^T, blocked over b rows so a block
 * of weights is reused across all activation rows before moving on.
 */
void
gemmTransposedBRows(const Tensor &a, const Tensor &b, float *out,
                    size_t out_stride, size_t i_lo, size_t i_hi)
{
    const size_t k = a.cols(), n = b.rows();
    const GemmBlockFn block = gemmBlock();
    for (size_t jb = 0; jb < n; jb += kGemmRowBlock) {
        const size_t j_hi = std::min(jb + kGemmRowBlock, n);
        block(a.data(), b.data(), out, out_stride, k, i_lo, i_hi,
              jb, j_hi);
    }
}

void
gemmTransposedBRowsI8(const QTensor &a, const QTensor &b, float *out,
                      size_t out_stride, size_t i_lo, size_t i_hi)
{
    const size_t k = a.cols(), n = b.rows();
    const GemmBlockI8Fn block = gemmBlockI8();
    for (size_t jb = 0; jb < n; jb += kGemmRowBlock) {
        const size_t j_hi = std::min(jb + kGemmRowBlock, n);
        block(a.data(), a.scales(), b.data(), b.scales(), out,
              out_stride, k, i_lo, i_hi, jb, j_hi);
    }
}

} // namespace

void
matmul(const Tensor &a, const Tensor &b, Tensor &out)
{
    SPECINFER_CHECK(a.cols() == b.rows(),
                    "matmul shape mismatch " << a.shapeString() << " * "
                                             << b.shapeString());
    SPECINFER_CHECK(out.rows() == a.rows() && out.cols() == b.cols(),
                    "matmul output shape mismatch");
    const size_t k = a.cols(), n = b.cols();
    // Row-parallel; per-element accumulation stays in ascending kk
    // order, so results match the serial kernel bit for bit.
    util::ThreadPool::global().parallelFor(
        0, a.rows(), [&](size_t i) {
            float *out_row = out.row(i);
            std::fill(out_row, out_row + n, 0.0f);
            const float *a_row = a.row(i);
            for (size_t kk = 0; kk < k; ++kk) {
                const float av = a_row[kk];
                const float *b_row = b.row(kk);
                for (size_t j = 0; j < n; ++j)
                    out_row[j] += av * b_row[j];
            }
        });
}

void
matmulTransposedBInto(const Tensor &a, const Tensor &b, float *out,
                      size_t out_stride)
{
    SPECINFER_CHECK(a.cols() == b.cols(),
                    "matmulT shape mismatch " << a.shapeString() << " * "
                                              << b.shapeString() << "^T");
    SPECINFER_CHECK(out_stride >= b.rows(),
                    "matmulT output stride " << out_stride
                                             << " narrower than "
                                             << b.rows() << " columns");
    const size_t m = a.rows(), n = b.rows();
    util::ThreadPool &pool = util::ThreadPool::global();
    if (m >= pool.threads()) {
        // Enough activation rows to split: one contiguous row range
        // per worker, weight blocks reused within each range.
        pool.parallelFor(0, pool.threads(), [&](size_t w) {
            const size_t i_lo = w * m / pool.threads();
            const size_t i_hi = (w + 1) * m / pool.threads();
            gemmTransposedBRows(a, b, out, out_stride, i_lo, i_hi);
        });
        return;
    }
    // Thin activations (down to the m=1 matvec): split the weight
    // rows across workers instead.
    const size_t n_blocks = (n + kGemmRowBlock - 1) / kGemmRowBlock;
    const GemmBlockFn block = gemmBlock();
    pool.parallelFor(0, n_blocks, [&](size_t blk) {
        const size_t jb = blk * kGemmRowBlock;
        const size_t j_hi = std::min(jb + kGemmRowBlock, n);
        block(a.data(), b.data(), out, out_stride, a.cols(), 0, m,
              jb, j_hi);
    });
}

void
matmulTransposedB(const Tensor &a, const Tensor &b, Tensor &out)
{
    SPECINFER_CHECK(out.rows() == a.rows() && out.cols() == b.rows(),
                    "matmulT output shape mismatch");
    matmulTransposedBInto(a, b, out.data(), out.cols());
}

void
matmulTransposedBInto(const QTensor &a, const QTensor &b, float *out,
                      size_t out_stride)
{
    SPECINFER_CHECK(a.cols() == b.cols(),
                    "int8 matmulT shape mismatch ["
                        << a.rows() << " x " << a.cols() << "] * ["
                        << b.rows() << " x " << b.cols() << "]^T");
    SPECINFER_CHECK(out_stride >= b.rows(),
                    "int8 matmulT output stride "
                        << out_stride << " narrower than " << b.rows()
                        << " columns");
    const size_t m = a.rows(), n = b.rows();
    util::ThreadPool &pool = util::ThreadPool::global();
    if (m >= pool.threads()) {
        pool.parallelFor(0, pool.threads(), [&](size_t w) {
            const size_t i_lo = w * m / pool.threads();
            const size_t i_hi = (w + 1) * m / pool.threads();
            gemmTransposedBRowsI8(a, b, out, out_stride, i_lo, i_hi);
        });
        return;
    }
    const size_t n_blocks = (n + kGemmRowBlock - 1) / kGemmRowBlock;
    const GemmBlockI8Fn block = gemmBlockI8();
    pool.parallelFor(0, n_blocks, [&](size_t blk) {
        const size_t jb = blk * kGemmRowBlock;
        const size_t j_hi = std::min(jb + kGemmRowBlock, n);
        block(a.data(), a.scales(), b.data(), b.scales(), out,
              out_stride, a.cols(), 0, m, jb, j_hi);
    });
}

void
matmulTransposedB(const QTensor &a, const QTensor &b, Tensor &out)
{
    SPECINFER_CHECK(out.rows() == a.rows() && out.cols() == b.rows(),
                    "int8 matmulT output shape mismatch");
    matmulTransposedBInto(a, b, out.data(), out.cols());
}

void
matmulTransposedBSlice(const Tensor &a, const Tensor &b, size_t k0,
                       size_t k1, size_t j0, size_t j1, float *out,
                       size_t out_stride)
{
    SPECINFER_CHECK(a.cols() == b.cols(),
                    "matmulT slice shape mismatch "
                        << a.shapeString() << " * " << b.shapeString()
                        << "^T");
    SPECINFER_CHECK(k0 <= k1 && k1 <= a.cols(),
                    "matmulT k-slice [" << k0 << ", " << k1
                                        << ") out of range");
    SPECINFER_CHECK(j0 <= j1 && j1 <= b.rows(),
                    "matmulT j-slice [" << j0 << ", " << j1
                                        << ") out of range");
    SPECINFER_CHECK(out_stride >= j1 - j0,
                    "matmulT slice output stride "
                        << out_stride << " narrower than " << (j1 - j0)
                        << " columns");
    if (k0 == 0 && k1 == a.cols() && j0 == 0 && j1 == b.rows()) {
        matmulTransposedBInto(a, b, out, out_stride);
        return;
    }
    const size_t m = a.rows(), nw = j1 - j0, len = k1 - k0;
    if (m == 0 || nw == 0)
        return;
    const float *a_base = a.data() + k0;
    const float *b_base = b.data() + j0 * b.cols() + k0;
    const GemmSliceFn tile = gemmSlice();
    util::ThreadPool &pool = util::ThreadPool::global();
    // Same split policy as matmulTransposedBInto; under a rank body
    // the nested parallelFor degrades to inline, so sharded callers
    // get per-rank serial tiles while tp=1 orchestrator calls still
    // thread across the pool.
    if (m >= pool.threads()) {
        pool.parallelFor(0, pool.threads(), [&](size_t w) {
            const size_t i_lo = w * m / pool.threads();
            const size_t i_hi = (w + 1) * m / pool.threads();
            for (size_t jb = 0; jb < nw; jb += kGemmRowBlock) {
                const size_t j_hi = std::min(jb + kGemmRowBlock, nw);
                tile(a_base, a.cols(), b_base, b.cols(), out,
                     out_stride, len, i_lo, i_hi, jb, j_hi);
            }
        });
        return;
    }
    const size_t n_blocks = (nw + kGemmRowBlock - 1) / kGemmRowBlock;
    pool.parallelFor(0, n_blocks, [&](size_t blk) {
        const size_t jb = blk * kGemmRowBlock;
        const size_t j_hi = std::min(jb + kGemmRowBlock, nw);
        tile(a_base, a.cols(), b_base, b.cols(), out, out_stride, len,
             0, m, jb, j_hi);
    });
}

void
matmulTransposedBSlice(const QTensor &a, const QTensor &b, size_t k0,
                       size_t k1, size_t j0, size_t j1, float *out,
                       size_t out_stride)
{
    SPECINFER_CHECK(a.cols() == b.cols(),
                    "int8 matmulT slice shape mismatch ["
                        << a.rows() << " x " << a.cols() << "] * ["
                        << b.rows() << " x " << b.cols() << "]^T");
    SPECINFER_CHECK(k0 <= k1 && k1 <= a.cols(),
                    "int8 matmulT k-slice [" << k0 << ", " << k1
                                             << ") out of range");
    SPECINFER_CHECK(j0 <= j1 && j1 <= b.rows(),
                    "int8 matmulT j-slice [" << j0 << ", " << j1
                                             << ") out of range");
    SPECINFER_CHECK(out_stride >= j1 - j0,
                    "int8 matmulT slice output stride "
                        << out_stride << " narrower than " << (j1 - j0)
                        << " columns");
    if (k0 == 0 && k1 == a.cols() && j0 == 0 && j1 == b.rows()) {
        matmulTransposedBInto(a, b, out, out_stride);
        return;
    }
    const size_t m = a.rows(), nw = j1 - j0, len = k1 - k0;
    if (m == 0 || nw == 0)
        return;
    const int8_t *a_base = a.data() + k0;
    const int8_t *b_base = b.data() + j0 * b.cols() + k0;
    const float *b_scales = b.scales() + j0;
    const GemmSliceI8Fn tile = gemmSliceI8();
    util::ThreadPool &pool = util::ThreadPool::global();
    if (m >= pool.threads()) {
        pool.parallelFor(0, pool.threads(), [&](size_t w) {
            const size_t i_lo = w * m / pool.threads();
            const size_t i_hi = (w + 1) * m / pool.threads();
            for (size_t jb = 0; jb < nw; jb += kGemmRowBlock) {
                const size_t j_hi = std::min(jb + kGemmRowBlock, nw);
                tile(a_base, a.cols(), a.scales(), b_base, b.cols(),
                     b_scales, out, out_stride, len, i_lo, i_hi, jb,
                     j_hi);
            }
        });
        return;
    }
    const size_t n_blocks = (nw + kGemmRowBlock - 1) / kGemmRowBlock;
    pool.parallelFor(0, n_blocks, [&](size_t blk) {
        const size_t jb = blk * kGemmRowBlock;
        const size_t j_hi = std::min(jb + kGemmRowBlock, nw);
        tile(a_base, a.cols(), a.scales(), b_base, b.cols(), b_scales,
             out, out_stride, len, 0, m, jb, j_hi);
    });
}

void
matvecTransposed(const float *x, const Tensor &w, float *out)
{
    const size_t k = w.cols(), n = w.rows();
    const float *w_base = w.data();
    for (size_t j = 0; j < n; ++j)
        out[j] = dotRow(x, w_base + j * k, k);
}

void
softmaxRow(float *row, size_t n)
{
    SPECINFER_CHECK(n > 0, "softmax of empty row");
    float peak = row[0];
    for (size_t i = 1; i < n; ++i)
        peak = std::max(peak, row[i]);
    float total = 0.0f;
    for (size_t i = 0; i < n; ++i) {
        row[i] = std::exp(row[i] - peak);
        total += row[i];
    }
    const float inv = 1.0f / total;
    for (size_t i = 0; i < n; ++i)
        row[i] *= inv;
}

void
softmaxRowTemperature(float *row, size_t n, float temperature)
{
    SPECINFER_CHECK(n > 0, "softmax of empty row");
    if (temperature <= 0.0f) {
        size_t best = argmaxRow(row, n);
        std::fill(row, row + n, 0.0f);
        row[best] = 1.0f;
        return;
    }
    const float inv_t = 1.0f / temperature;
    for (size_t i = 0; i < n; ++i)
        row[i] *= inv_t;
    softmaxRow(row, n);
}

void
rmsnormRow(const float *x, const float *gain, size_t n, float *out,
           float eps)
{
    double ss = 0.0;
    for (size_t i = 0; i < n; ++i)
        ss += static_cast<double>(x[i]) * static_cast<double>(x[i]);
    const float inv_rms = 1.0f / std::sqrt(
        static_cast<float>(ss / static_cast<double>(n)) + eps);
    for (size_t i = 0; i < n; ++i)
        out[i] = x[i] * inv_rms * gain[i];
}

void
siluRow(float *row, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        row[i] = row[i] / (1.0f + std::exp(-row[i]));
}

void
geluRow(float *row, size_t n)
{
    constexpr float k = 0.7978845608f; // sqrt(2/pi)
    for (size_t i = 0; i < n; ++i) {
        float x = row[i];
        row[i] = 0.5f * x *
                 (1.0f + std::tanh(k * (x + 0.044715f * x * x * x)));
    }
}

void
addRow(float *out, const float *a, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] += a[i];
}

void
scaleRow(float *row, size_t n, float s)
{
    for (size_t i = 0; i < n; ++i)
        row[i] *= s;
}

void
mulRows(float *out, const float *a, const float *b, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = a[i] * b[i];
}

void
ropeCosSin(size_t d_head, size_t position, float theta,
           float *cos_sin)
{
    SPECINFER_CHECK(d_head % 2 == 0, "RoPE requires even head dim");
    for (size_t i = 0; i < d_head; i += 2) {
        float freq = std::pow(
            theta, -static_cast<float>(i) /
                   static_cast<float>(d_head));
        float angle = static_cast<float>(position) * freq;
        cos_sin[i] = std::cos(angle);
        cos_sin[i + 1] = std::sin(angle);
    }
}

void
ropeRowCached(float *row, size_t n_heads, size_t d_head,
              const float *cos_sin)
{
    for (size_t h = 0; h < n_heads; ++h) {
        float *head = row + h * d_head;
        for (size_t i = 0; i < d_head; i += 2) {
            const float c = cos_sin[i], s = cos_sin[i + 1];
            float x0 = head[i], x1 = head[i + 1];
            head[i] = x0 * c - x1 * s;
            head[i + 1] = x0 * s + x1 * c;
        }
    }
}

void
ropeRow(float *row, size_t n_heads, size_t d_head, size_t position,
        float theta)
{
    SPECINFER_CHECK(d_head % 2 == 0, "RoPE requires even head dim");
    for (size_t h = 0; h < n_heads; ++h) {
        float *head = row + h * d_head;
        for (size_t i = 0; i < d_head; i += 2) {
            float freq = std::pow(
                theta, -static_cast<float>(i) /
                       static_cast<float>(d_head));
            float angle = static_cast<float>(position) * freq;
            float c = std::cos(angle), s = std::sin(angle);
            float x0 = head[i], x1 = head[i + 1];
            head[i] = x0 * c - x1 * s;
            head[i + 1] = x0 * s + x1 * c;
        }
    }
}

size_t
argmaxRow(const float *row, size_t n)
{
    SPECINFER_CHECK(n > 0, "argmax of empty row");
    size_t best = 0;
    for (size_t i = 1; i < n; ++i)
        if (row[i] > row[best])
            best = i;
    return best;
}

std::vector<size_t>
topkRow(const float *row, size_t n, size_t k)
{
    SPECINFER_CHECK(k > 0 && k <= n, "topk with k=" << k << ", n=" << n);
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i)
        idx[i] = i;
    std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                      [row](size_t a, size_t b) {
                          if (row[a] != row[b])
                              return row[a] > row[b];
                          return a < b;
                      });
    idx.resize(k);
    return idx;
}

double
totalVariation(const float *p, const float *q, size_t n)
{
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i)
        acc += std::abs(static_cast<double>(p[i]) -
                        static_cast<double>(q[i]));
    return 0.5 * acc;
}

} // namespace tensor
} // namespace specinfer
