#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace specinfer {
namespace tensor {

void
matmul(const Tensor &a, const Tensor &b, Tensor &out)
{
    SPECINFER_CHECK(a.cols() == b.rows(),
                    "matmul shape mismatch " << a.shapeString() << " * "
                                             << b.shapeString());
    SPECINFER_CHECK(out.rows() == a.rows() && out.cols() == b.cols(),
                    "matmul output shape mismatch");
    const size_t m = a.rows(), k = a.cols(), n = b.cols();
    for (size_t i = 0; i < m; ++i) {
        float *out_row = out.row(i);
        std::fill(out_row, out_row + n, 0.0f);
        const float *a_row = a.row(i);
        for (size_t kk = 0; kk < k; ++kk) {
            const float av = a_row[kk];
            const float *b_row = b.row(kk);
            for (size_t j = 0; j < n; ++j)
                out_row[j] += av * b_row[j];
        }
    }
}

void
matmulTransposedB(const Tensor &a, const Tensor &b, Tensor &out)
{
    SPECINFER_CHECK(a.cols() == b.cols(),
                    "matmulT shape mismatch " << a.shapeString() << " * "
                                              << b.shapeString() << "^T");
    SPECINFER_CHECK(out.rows() == a.rows() && out.cols() == b.rows(),
                    "matmulT output shape mismatch");
    for (size_t i = 0; i < a.rows(); ++i) {
        const float *a_row = a.row(i);
        float *out_row = out.row(i);
        for (size_t j = 0; j < b.rows(); ++j)
            out_row[j] = dotRow(a_row, b.row(j), a.cols());
    }
}

void
matvecTransposed(const float *x, const Tensor &w, float *out)
{
    for (size_t j = 0; j < w.rows(); ++j)
        out[j] = dotRow(x, w.row(j), w.cols());
}

void
softmaxRow(float *row, size_t n)
{
    SPECINFER_CHECK(n > 0, "softmax of empty row");
    float peak = row[0];
    for (size_t i = 1; i < n; ++i)
        peak = std::max(peak, row[i]);
    float total = 0.0f;
    for (size_t i = 0; i < n; ++i) {
        row[i] = std::exp(row[i] - peak);
        total += row[i];
    }
    const float inv = 1.0f / total;
    for (size_t i = 0; i < n; ++i)
        row[i] *= inv;
}

void
softmaxRowTemperature(float *row, size_t n, float temperature)
{
    SPECINFER_CHECK(n > 0, "softmax of empty row");
    if (temperature <= 0.0f) {
        size_t best = argmaxRow(row, n);
        std::fill(row, row + n, 0.0f);
        row[best] = 1.0f;
        return;
    }
    const float inv_t = 1.0f / temperature;
    for (size_t i = 0; i < n; ++i)
        row[i] *= inv_t;
    softmaxRow(row, n);
}

void
rmsnormRow(const float *x, const float *gain, size_t n, float *out,
           float eps)
{
    double ss = 0.0;
    for (size_t i = 0; i < n; ++i)
        ss += static_cast<double>(x[i]) * static_cast<double>(x[i]);
    const float inv_rms = 1.0f / std::sqrt(
        static_cast<float>(ss / static_cast<double>(n)) + eps);
    for (size_t i = 0; i < n; ++i)
        out[i] = x[i] * inv_rms * gain[i];
}

void
siluRow(float *row, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        row[i] = row[i] / (1.0f + std::exp(-row[i]));
}

void
geluRow(float *row, size_t n)
{
    constexpr float k = 0.7978845608f; // sqrt(2/pi)
    for (size_t i = 0; i < n; ++i) {
        float x = row[i];
        row[i] = 0.5f * x *
                 (1.0f + std::tanh(k * (x + 0.044715f * x * x * x)));
    }
}

void
addRow(float *out, const float *a, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] += a[i];
}

void
scaleRow(float *row, size_t n, float s)
{
    for (size_t i = 0; i < n; ++i)
        row[i] *= s;
}

void
mulRows(float *out, const float *a, const float *b, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = a[i] * b[i];
}

float
dotRow(const float *a, const float *b, size_t n)
{
    float acc = 0.0f;
    for (size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

void
ropeRow(float *row, size_t n_heads, size_t d_head, size_t position,
        float theta)
{
    SPECINFER_CHECK(d_head % 2 == 0, "RoPE requires even head dim");
    for (size_t h = 0; h < n_heads; ++h) {
        float *head = row + h * d_head;
        for (size_t i = 0; i < d_head; i += 2) {
            float freq = std::pow(
                theta, -static_cast<float>(i) /
                       static_cast<float>(d_head));
            float angle = static_cast<float>(position) * freq;
            float c = std::cos(angle), s = std::sin(angle);
            float x0 = head[i], x1 = head[i + 1];
            head[i] = x0 * c - x1 * s;
            head[i + 1] = x0 * s + x1 * c;
        }
    }
}

size_t
argmaxRow(const float *row, size_t n)
{
    SPECINFER_CHECK(n > 0, "argmax of empty row");
    size_t best = 0;
    for (size_t i = 1; i < n; ++i)
        if (row[i] > row[best])
            best = i;
    return best;
}

std::vector<size_t>
topkRow(const float *row, size_t n, size_t k)
{
    SPECINFER_CHECK(k > 0 && k <= n, "topk with k=" << k << ", n=" << n);
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i)
        idx[i] = i;
    std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                      [row](size_t a, size_t b) {
                          if (row[a] != row[b])
                              return row[a] > row[b];
                          return a < b;
                      });
    idx.resize(k);
    return idx;
}

double
totalVariation(const float *p, const float *q, size_t n)
{
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i)
        acc += std::abs(static_cast<double>(p[i]) -
                        static_cast<double>(q[i]));
    return 0.5 * acc;
}

} // namespace tensor
} // namespace specinfer
