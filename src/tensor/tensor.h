/**
 * @file
 * Minimal dense float tensor used by the transformer substrate.
 *
 * Row-major, owning storage, rank 1 or 2 in practice (attention code
 * flattens heads explicitly). This is deliberately a small surface:
 * all hot-loop math lives in tensor/ops.h and works on raw rows.
 */

#ifndef SPECINFER_TENSOR_TENSOR_H
#define SPECINFER_TENSOR_TENSOR_H

#include <cstddef>
#include <string>
#include <vector>

namespace specinfer {
namespace tensor {

/**
 * Dense row-major float matrix/vector.
 *
 * A Tensor with rows == 1 doubles as a vector. Element access is
 * bounds-checked in debug builds via SPECINFER_CHECK.
 */
class Tensor
{
  public:
    /** Empty 0x0 tensor. */
    Tensor() = default;

    /** Allocate a rows x cols tensor, zero-initialized. */
    Tensor(size_t rows, size_t cols);

    /** Allocate and fill with a constant. */
    Tensor(size_t rows, size_t cols, float fill);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    /** Mutable element access. */
    float &at(size_t r, size_t c);

    /** Const element access. */
    float at(size_t r, size_t c) const;

    /** Pointer to the start of row r. */
    float *row(size_t r);
    const float *row(size_t r) const;

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Set every element to the given value. */
    void fill(float value);

    /** Resize (contents are discarded and zeroed). */
    void reset(size_t rows, size_t cols);

    /** Human-readable shape, e.g. "[4 x 128]". */
    std::string shapeString() const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace tensor
} // namespace specinfer

#endif // SPECINFER_TENSOR_TENSOR_H
