#include "tensor/tensor.h"

#include <sstream>

#include "util/logging.h"

namespace specinfer {
namespace tensor {

Tensor::Tensor(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

Tensor::Tensor(size_t rows, size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

float &
Tensor::at(size_t r, size_t c)
{
    SPECINFER_CHECK(r < rows_ && c < cols_,
                    "index (" << r << ", " << c << ") out of "
                              << shapeString());
    return data_[r * cols_ + c];
}

float
Tensor::at(size_t r, size_t c) const
{
    SPECINFER_CHECK(r < rows_ && c < cols_,
                    "index (" << r << ", " << c << ") out of "
                              << shapeString());
    return data_[r * cols_ + c];
}

float *
Tensor::row(size_t r)
{
    SPECINFER_CHECK(r < rows_, "row " << r << " out of " << shapeString());
    return data_.data() + r * cols_;
}

const float *
Tensor::row(size_t r) const
{
    SPECINFER_CHECK(r < rows_, "row " << r << " out of " << shapeString());
    return data_.data() + r * cols_;
}

void
Tensor::fill(float value)
{
    for (float &x : data_)
        x = value;
}

void
Tensor::reset(size_t rows, size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
}

std::string
Tensor::shapeString() const
{
    std::ostringstream oss;
    oss << "[" << rows_ << " x " << cols_ << "]";
    return oss.str();
}

} // namespace tensor
} // namespace specinfer
