/**
 * @file
 * Weight compression primitives: symmetric per-row integer
 * fake-quantization and magnitude pruning.
 *
 * The paper obtains SSMs from "distilled, quantized, and/or pruned
 * variants of an LLM" (§1). Fake quantization (quantize to an
 * n-bit grid, dequantize back to float) reproduces a quantized
 * model's numerical behaviour while staying runnable by the float
 * kernels, which is exactly what acceptance-rate studies need.
 */

#ifndef SPECINFER_TENSOR_QUANT_H
#define SPECINFER_TENSOR_QUANT_H

#include <cstddef>

#include "tensor/tensor.h"

namespace specinfer {
namespace tensor {

/**
 * Symmetric per-row fake quantization in place: each row is scaled
 * to the signed n-bit integer grid ([-127, 127] for 8 bits),
 * rounded, and scaled back.
 *
 * @param t Weight matrix, modified in place.
 * @param bits Integer width in [2, 8].
 */
void fakeQuantizeRows(Tensor &t, int bits);

/**
 * Magnitude pruning in place: zero the fraction `sparsity` of
 * entries with the smallest absolute values (global threshold).
 *
 * @param t Weight matrix, modified in place.
 * @param sparsity Fraction to zero, in [0, 1).
 */
void pruneByMagnitude(Tensor &t, double sparsity);

/** Mean absolute difference between two same-shape tensors. */
double meanAbsDiff(const Tensor &a, const Tensor &b);

/** Fraction of exactly-zero entries. */
double zeroFraction(const Tensor &t);

} // namespace tensor
} // namespace specinfer

#endif // SPECINFER_TENSOR_QUANT_H
