/**
 * @file
 * Quantized tensor storage: int8 rows with per-row fp32 scales.
 *
 * This is the *real* counterpart of quant.h's fake quantization:
 * the same symmetric per-row grid ([-127, 127], scale = peak / 127),
 * but stored as integers so the GEMM kernels in ops.cc can run
 * integer arithmetic at a quarter of fp32's memory bandwidth.
 *
 * Reproducibility contract: quantizeRows() lands every weight on
 * exactly the grid fakeQuantizeRows(t, 8) uses, and dequantize()
 * reproduces the fake-quantized float matrix bit for bit — so the
 * acceptance-rate studies built on fake quantization describe the
 * int8 execution path's weights verbatim.
 *
 * Determinism contract: the integer dot product is exact (int32
 * accumulation never rounds at these sizes), so int8 GEMM results
 * are bit-identical across scalar/AVX2 dispatch and any thread
 * count — stronger than the float kernels' fixed-reduction-order
 * guarantee, and relied on by the spec-vs-incremental oracle.
 */

#ifndef SPECINFER_TENSOR_QTENSOR_H
#define SPECINFER_TENSOR_QTENSOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace specinfer {
namespace tensor {

/**
 * Dense row-major int8 matrix with one fp32 scale per row.
 * Row r dequantizes as data[r][c] * scale[r].
 */
class QTensor
{
  public:
    /** Empty 0x0 tensor. */
    QTensor() = default;

    /** Allocate a rows x cols tensor, zero-initialized, scales 0. */
    QTensor(size_t rows, size_t cols);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    int8_t *row(size_t r) { return data_.data() + r * cols_; }
    const int8_t *row(size_t r) const
    {
        return data_.data() + r * cols_;
    }

    int8_t *data() { return data_.data(); }
    const int8_t *data() const { return data_.data(); }

    float *scales() { return scales_.data(); }
    const float *scales() const { return scales_.data(); }
    float scale(size_t r) const { return scales_[r]; }

    /** Resize (contents are discarded and zeroed). */
    void reset(size_t rows, size_t cols);

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<int8_t> data_;
    std::vector<float> scales_;
};

/**
 * Quantize one float row to the symmetric int8 grid. Exactly
 * fakeQuantizeRows' arithmetic: scale = peak / 127 (computed in
 * fp32), q[c] = round(row[c] / scale). An all-zero row gets scale 0
 * and all-zero quants (its dot contribution is zero either way).
 */
void quantizeRow(const float *row, size_t n, int8_t *q, float *scale);

/**
 * Quantize every row of t into out (resized to t's shape).
 * Row-parallel over the global ThreadPool; rows are independent so
 * the result is identical at any thread count.
 */
void quantizeRows(const Tensor &t, QTensor &out);

/** Dequantize back to float: out[r][c] = q[r][c] * scale[r],
 *  bit-identical to fakeQuantizeRows(t, 8) applied to the source. */
Tensor dequantize(const QTensor &q);

/**
 * Exact int32 dot product of two int8 rows — the scalar reference
 * every int8 GEMM tile must reproduce bit for bit. Products are at
 * most 127 * 127 and n stays far below 2^17 in this codebase, so
 * the int32 accumulator cannot overflow (hard bound: n < 2^24).
 */
inline int32_t
dotRowI8(const int8_t *a, const int8_t *b, size_t n)
{
    int32_t acc = 0;
    for (size_t i = 0; i < n; ++i)
        acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
    return acc;
}

} // namespace tensor
} // namespace specinfer

#endif // SPECINFER_TENSOR_QTENSOR_H
