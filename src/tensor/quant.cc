#include "tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.h"

namespace specinfer {
namespace tensor {

void
fakeQuantizeRows(Tensor &t, int bits)
{
    SPECINFER_CHECK(bits >= 2 && bits <= 8,
                    "quantization width must be in [2, 8]");
    const float q_max =
        static_cast<float>((1 << (bits - 1)) - 1);
    for (size_t r = 0; r < t.rows(); ++r) {
        float *row = t.row(r);
        float peak = 0.0f;
        for (size_t c = 0; c < t.cols(); ++c)
            peak = std::max(peak, std::abs(row[c]));
        if (peak == 0.0f)
            continue;
        const float scale = peak / q_max;
        for (size_t c = 0; c < t.cols(); ++c) {
            const float v = std::round(row[c] / scale) * scale;
            // Canonicalize -0.0 to +0.0: integer storage has no
            // signed zero, and the real-int8 path promises a
            // bit-identical grid to this one.
            row[c] = v == 0.0f ? 0.0f : v;
        }
    }
}

void
pruneByMagnitude(Tensor &t, double sparsity)
{
    SPECINFER_CHECK(sparsity >= 0.0 && sparsity < 1.0,
                    "sparsity must be in [0, 1)");
    if (sparsity == 0.0 || t.size() == 0)
        return;
    std::vector<float> mags(t.size());
    for (size_t i = 0; i < t.size(); ++i)
        mags[i] = std::abs(t.data()[i]);
    size_t k = static_cast<size_t>(
        sparsity * static_cast<double>(t.size()));
    if (k == 0)
        return;
    std::nth_element(mags.begin(),
                     mags.begin() + static_cast<ptrdiff_t>(k - 1),
                     mags.end());
    const float threshold = mags[k - 1];
    size_t zeroed = 0;
    for (size_t i = 0; i < t.size() && zeroed < k; ++i) {
        if (std::abs(t.data()[i]) <= threshold) {
            t.data()[i] = 0.0f;
            ++zeroed;
        }
    }
}

double
meanAbsDiff(const Tensor &a, const Tensor &b)
{
    SPECINFER_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
                    "shape mismatch");
    if (a.size() == 0)
        return 0.0;
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        acc += std::abs(static_cast<double>(a.data()[i]) -
                        static_cast<double>(b.data()[i]));
    return acc / static_cast<double>(a.size());
}

double
zeroFraction(const Tensor &t)
{
    if (t.size() == 0)
        return 0.0;
    size_t zeros = 0;
    for (size_t i = 0; i < t.size(); ++i)
        zeros += t.data()[i] == 0.0f;
    return static_cast<double>(zeros) /
           static_cast<double>(t.size());
}

} // namespace tensor
} // namespace specinfer
