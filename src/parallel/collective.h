/**
 * @file
 * Tensor-parallel rank topology and a simulated collective library.
 *
 * The sharded forward path (src/model/transformer.cc) executes as a
 * sequence of orchestrated fork-join phases: rank bodies run on the
 * shared ThreadPool, and the collectives below move real bytes
 * between rank-local buffers at the phase boundaries. This mirrors
 * the paper artifact's intra-node tensor parallelism (§4, fig. 7)
 * at CPU scale — the data movement is genuine (memcpy/adds between
 * per-rank buffers), only the interconnect is simulated, so every
 * collective's byte and call counts can be validated exactly
 * against GpuPerfModel's communication formula.
 *
 * Determinism contract (DESIGN.md §5j): allReduceSum folds its
 * contributions serially in strictly ascending part order. Callers
 * that need rank-count invariance decompose the reduction dimension
 * into a FIXED number of canonical parts — independent of the rank
 * count — and pass them in canonical order. The fold tree then
 * never changes shape when ranks do, so results are bit-identical
 * at every tensor-parallel degree.
 */

#ifndef SPECINFER_PARALLEL_COLLECTIVE_H
#define SPECINFER_PARALLEL_COLLECTIVE_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace specinfer {
namespace obs {
class MetricsRegistry;
}

namespace parallel {

/**
 * Contiguous slice [begin, end) of n items owned by shard i of
 * `shards` (the Megatron-style static partition; uneven remainders
 * spread over the leading shards).
 *
 * Nesting guarantee: when inner divides outer, the range of outer
 * shard i equals the union of inner shards [i*inner/outer,
 * (i+1)*inner/outer) — rank shard boundaries therefore always align
 * with canonical reduce-block boundaries when tp divides the block
 * count. (Both bounds are exact rationals: i*n/outer ==
 * (i*inner/outer)*n/inner.)
 */
std::pair<size_t, size_t> shardRange(size_t n, size_t shards,
                                     size_t shard);

/** Byte/call accounting for every collective issued on one comm. */
struct CommStats
{
    uint64_t allReduceCalls = 0;
    uint64_t allReduceBytes = 0;
    uint64_t allGatherCalls = 0;
    uint64_t allGatherBytes = 0;
    uint64_t broadcastCalls = 0;
    uint64_t broadcastBytes = 0;
    uint64_t barrierCalls = 0;
};

class TpComm;

/**
 * Sense-reversing reconvergence barrier for real SPMD thread
 * groups. The orchestrated forward path does not need it (fork-join
 * joins are its barriers); it exists for callers that keep rank
 * threads alive across phases, and it is hammered under TSan by
 * tests/parallel/collective_test.cc.
 */
class Barrier
{
  public:
    /**
     * @param parties Threads per reconvergence (>= 1).
     * @param comm Optional comm whose barrierCalls counter is
     *             incremented once per full reconvergence.
     */
    explicit Barrier(size_t parties, TpComm *comm = nullptr);

    /** Block until all parties have arrived, then release them. */
    void arriveAndWait();

  private:
    std::mutex mutex_;
    std::condition_variable released_;
    size_t parties_;
    size_t waiting_ = 0;
    uint64_t phase_ = 0;
    TpComm *comm_;
};

/**
 * One tensor-parallel communicator: a rank count plus the byte/call
 * ledger of every collective issued through it.
 *
 * Collectives execute real data movement between the caller's
 * rank-local buffers, on the calling thread (they sit at fork-join
 * phase boundaries, after every rank body has been joined — see the
 * file comment). Methods are not thread-safe against each other;
 * only Barrier touches the ledger concurrently, under its own lock.
 *
 * Accounting: a communicator of 1 rank moves nothing off-"device",
 * so its collectives count zero calls and zero bytes — exactly the
 * tp=1 branch of GpuPerfModel::tensorParallelComm(). With > 1
 * ranks, each collective counts one call and the logical payload
 * (the reduced/gathered tensor's bytes, matching the perf model's
 * msg_bytes, not the per-link traffic of a ring schedule).
 */
class TpComm
{
  public:
    explicit TpComm(size_t ranks);

    size_t ranks() const { return ranks_; }
    const CommStats &stats() const { return stats_; }
    void resetStats() { stats_ = CommStats{}; }

    /** Rank r's shard of n items (see shardRange). */
    std::pair<size_t, size_t> rankRange(size_t n, size_t rank) const
    {
        return shardRange(n, ranks_, rank);
    }

    /**
     * Ordered sum-reduction into out (n floats):
     *   out = (((parts[0] + parts[1]) + parts[2]) + ...)
     * folded elementwise, strictly in ascending part order. Parts
     * may outnumber ranks (canonical reduce blocks, rank-major
     * ascending); the part list — not the rank count — defines the
     * fold tree, which is what makes results bit-identical at every
     * tensor-parallel degree. out must not alias any part.
     */
    void allReduceSum(const std::vector<const float *> &parts,
                      float *out, size_t n);

    /**
     * Column-slab all-gather: rank r's buffer src[r] holds the
     * dense [rows x width_r] slab for columns rankRange(cols, r) of
     * a row-major [rows x cols] destination; every slab is copied
     * into place. The canonical use is the vocab-sharded LM head.
     */
    void allGatherColumns(const std::vector<const float *> &src,
                          size_t rows, size_t cols, float *out);

    /**
     * Concatenating all-gather: out becomes src[0] (counts[0]
     * floats) followed by src[1], ... in rank order.
     */
    void allGather(const std::vector<const float *> &src,
                   const std::vector<size_t> &counts, float *out);

    /** Replicate src (n floats) into every dst buffer (one per
     *  rank; a rank's dst may be null to skip, e.g. the root's). */
    void broadcast(const float *src, size_t n,
                   const std::vector<float *> &dst);

    /**
     * Publish the ledger into `reg` as the parallel_* counters
     * (parallel_allreduce_calls/bytes, parallel_allgather_*,
     * parallel_broadcast_*, parallel_barrier_calls). Counters are
     * cumulative across publishes; callers publish deltas by
     * resetStats() between rounds (the forward path uses one
     * short-lived comm per call instead).
     */
    void publish(obs::MetricsRegistry &reg) const;

  private:
    friend class Barrier;

    size_t ranks_;
    CommStats stats_;
};

} // namespace parallel
} // namespace specinfer

#endif // SPECINFER_PARALLEL_COLLECTIVE_H
