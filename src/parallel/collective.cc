#include "parallel/collective.h"

#include <cstring>

#include "obs/metrics.h"
#include "util/logging.h"

namespace specinfer {
namespace parallel {

std::pair<size_t, size_t> shardRange(size_t n, size_t shards,
                                     size_t shard)
{
    SPECINFER_CHECK(shards >= 1, "shardRange: shards must be >= 1");
    SPECINFER_CHECK(shard < shards,
                    "shardRange: shard index out of range");
    size_t begin = shard * n / shards;
    size_t end = (shard + 1) * n / shards;
    return {begin, end};
}

Barrier::Barrier(size_t parties, TpComm *comm)
    : parties_(parties), comm_(comm)
{
    SPECINFER_CHECK(parties >= 1,
                    "Barrier: parties must be >= 1");
}

void Barrier::arriveAndWait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (++waiting_ == parties_) {
        waiting_ = 0;
        ++phase_;
        if (comm_ != nullptr && comm_->ranks_ > 1) {
            ++comm_->stats_.barrierCalls;
        }
        released_.notify_all();
        return;
    }
    uint64_t my_phase = phase_;
    released_.wait(lock,
                   [&] { return phase_ != my_phase; });
}

TpComm::TpComm(size_t ranks) : ranks_(ranks)
{
    SPECINFER_CHECK(ranks >= 1, "TpComm: ranks must be >= 1");
}

void TpComm::allReduceSum(const std::vector<const float *> &parts,
                          float *out, size_t n)
{
    SPECINFER_CHECK(!parts.empty(),
                    "allReduceSum: need at least one part");
    std::memcpy(out, parts[0], n * sizeof(float));
    for (size_t p = 1; p < parts.size(); ++p) {
        const float *src = parts[p];
        for (size_t i = 0; i < n; ++i) out[i] += src[i];
    }
    if (ranks_ > 1) {
        ++stats_.allReduceCalls;
        stats_.allReduceBytes += n * sizeof(float);
    }
}

void TpComm::allGatherColumns(const std::vector<const float *> &src,
                              size_t rows, size_t cols, float *out)
{
    SPECINFER_CHECK(src.size() == ranks_,
                    "allGatherColumns: one slab per rank");
    for (size_t r = 0; r < ranks_; ++r) {
        auto range = rankRange(cols, r);
        size_t width = range.second - range.first;
        if (width == 0) continue;
        const float *slab = src[r];
        for (size_t i = 0; i < rows; ++i) {
            std::memcpy(out + i * cols + range.first,
                        slab + i * width, width * sizeof(float));
        }
    }
    if (ranks_ > 1) {
        ++stats_.allGatherCalls;
        stats_.allGatherBytes += rows * cols * sizeof(float);
    }
}

void TpComm::allGather(const std::vector<const float *> &src,
                       const std::vector<size_t> &counts, float *out)
{
    SPECINFER_CHECK(src.size() == ranks_ && counts.size() == ranks_,
                    "allGather: one buffer + count per rank");
    size_t offset = 0;
    for (size_t r = 0; r < ranks_; ++r) {
        if (counts[r] > 0) {
            std::memcpy(out + offset, src[r],
                        counts[r] * sizeof(float));
        }
        offset += counts[r];
    }
    if (ranks_ > 1) {
        ++stats_.allGatherCalls;
        stats_.allGatherBytes += offset * sizeof(float);
    }
}

void TpComm::broadcast(const float *src, size_t n,
                       const std::vector<float *> &dst)
{
    SPECINFER_CHECK(dst.size() == ranks_,
                    "broadcast: one destination slot per rank");
    for (size_t r = 0; r < ranks_; ++r) {
        if (dst[r] != nullptr && dst[r] != src) {
            std::memcpy(dst[r], src, n * sizeof(float));
        }
    }
    if (ranks_ > 1) {
        ++stats_.broadcastCalls;
        stats_.broadcastBytes += n * sizeof(float);
    }
}

void TpComm::publish(obs::MetricsRegistry &reg) const
{
    reg.counter("parallel_allreduce_calls")
        ->inc(stats_.allReduceCalls);
    reg.counter("parallel_allreduce_bytes")
        ->inc(stats_.allReduceBytes);
    reg.counter("parallel_allgather_calls")
        ->inc(stats_.allGatherCalls);
    reg.counter("parallel_allgather_bytes")
        ->inc(stats_.allGatherBytes);
    reg.counter("parallel_broadcast_calls")
        ->inc(stats_.broadcastCalls);
    reg.counter("parallel_broadcast_bytes")
        ->inc(stats_.broadcastBytes);
    reg.counter("parallel_barrier_calls")
        ->inc(stats_.barrierCalls);
}

} // namespace parallel
} // namespace specinfer
