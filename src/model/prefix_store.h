/**
 * @file
 * Best-effort payload cache for shared KV prefix blocks.
 *
 * The runtime's KvBlockAllocator decides *which* prompt-prefix blocks
 * are shared (deterministic accounting that participates in crash
 * snapshots and journal replay); this store holds the actual post-RoPE
 * key/value rows for those blocks so a later request can adopt them
 * instead of re-running prefill. The split matters for crash safety:
 * the store is deliberately *not* persisted — after recovery it starts
 * cold, adoption finds no payload, and prefill simply recomputes the
 * rows. Chunk-layout invariance (DESIGN.md §5c) guarantees the
 * recomputed rows are bitwise identical, so a cold store is a
 * performance regression, never a token-affecting one.
 *
 * Lifecycle of a block: declare() when the allocator interns its hash,
 * fill() once some session has the rows resident, adoptInto() by any
 * number of later sessions, evict() when the allocator reclaims the
 * accounting block (wired via KvBlockAllocator::setEvictionHook).
 */

#ifndef SPECINFER_MODEL_PREFIX_STORE_H
#define SPECINFER_MODEL_PREFIX_STORE_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "model/kv_cache.h"

namespace specinfer {
namespace model {

/** Hash-keyed cache of filled KV rows for shared prefix blocks. */
class PrefixKvStore
{
  public:
    /**
     * @param n_layers Transformer layers per block payload.
     * @param kv_dim Per-token K (and V) width.
     * @param block_tokens Tokens per block (the allocator's blockTokens).
     */
    PrefixKvStore(size_t n_layers, size_t kv_dim, size_t block_tokens);

    size_t layers() const { return nLayers_; }
    size_t kvDim() const { return kvDim_; }
    size_t blockTokens() const { return blockTokens_; }

    /** Announce a block the allocator interned. Idempotent. */
    void declare(uint64_t hash);

    bool contains(uint64_t hash) const
    {
        return blocks_.find(hash) != blocks_.end();
    }

    /** True once the block's rows have been captured. */
    bool filled(uint64_t hash) const;

    /**
     * Capture blockTokens() rows starting at cache slot first_row as
     * the payload for `hash`. No-op unless the block is declared and
     * not yet filled (first writer wins — all writers would produce
     * identical rows anyway).
     */
    void fill(uint64_t hash, const KvCache &cache, size_t first_row);

    /**
     * Append the first `rows` rows of the block into `cache`.
     * @return Rows adopted: `rows` on a warm hit, 0 if the block is
     *         absent or unfilled (caller falls back to prefill).
     */
    size_t adoptInto(uint64_t hash, size_t rows, KvCache *cache) const;

    /** Drop a block (allocator eviction hook). Unknown hash is a no-op. */
    void evict(uint64_t hash) { blocks_.erase(hash); }

    size_t size() const { return blocks_.size(); }
    size_t filledCount() const;

  private:
    struct Block {
        bool filled = false;
        /// Layer-major: layer * blockTokens * kvDim floats per plane.
        std::vector<float> keys;
        std::vector<float> values;
    };

    size_t nLayers_;
    size_t kvDim_;
    size_t blockTokens_;
    std::unordered_map<uint64_t, Block> blocks_;
};

} // namespace model
} // namespace specinfer

#endif // SPECINFER_MODEL_PREFIX_STORE_H
