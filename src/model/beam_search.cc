#include "model/beam_search.h"

#include <algorithm>
#include <cmath>

#include "model/sampler.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace specinfer {
namespace model {

double
BeamHypothesis::score(float length_penalty) const
{
    if (length_penalty <= 0.0f || tokens.empty())
        return logProb;
    return logProb /
           std::pow(static_cast<double>(tokens.size()),
                    static_cast<double>(length_penalty));
}

namespace {

/** A live beam: generated tokens, their cache slots, and the
 *  next-token distribution at the beam's tip. */
struct Beam
{
    std::vector<int> tokens;
    std::vector<size_t> slots; ///< cache slots of generated tokens
    std::vector<float> logProbs; ///< log next-token dist at the tip
    double logProb = 0.0;
};

std::vector<float>
logDistribution(const float *logits, size_t vocab)
{
    std::vector<float> dist(logits, logits + vocab);
    tensor::softmaxRow(dist.data(), vocab);
    for (float &p : dist)
        p = std::log(std::max(p, 1.0e-30f));
    return dist;
}

} // namespace

std::vector<BeamHypothesis>
beamSearch(const Transformer &model, const std::vector<int> &prompt,
           const BeamSearchParams &params)
{
    SPECINFER_CHECK(!prompt.empty(), "empty prompt");
    SPECINFER_CHECK(params.beamWidth >= 1, "beam width must be >= 1");
    const size_t vocab = model.config().vocabSize;
    const int eos = model.config().eosToken;

    KvCache cache = model.makeCache(prompt.size() +
                                    params.beamWidth *
                                        params.maxNewTokens + 2);
    tensor::Tensor logits =
        model.forward(DecodeChunk::sequence(prompt), cache);

    std::vector<Beam> live(1);
    live[0].logProbs =
        logDistribution(logits.row(prompt.size() - 1), vocab);
    std::vector<BeamHypothesis> finished;

    for (size_t step = 0; step < params.maxNewTokens; ++step) {
        if (live.empty() || finished.size() >= params.beamWidth)
            break;

        // Gather candidate continuations from every live beam.
        struct Candidate
        {
            size_t beam;
            int token;
            double logProb;
        };
        std::vector<Candidate> candidates;
        for (size_t b = 0; b < live.size(); ++b) {
            std::vector<size_t> top = tensor::topkRow(
                live[b].logProbs.data(), vocab,
                std::min(params.beamWidth + 1, vocab));
            for (size_t idx : top)
                candidates.push_back(
                    {b, static_cast<int>(idx),
                     live[b].logProb + live[b].logProbs[idx]});
        }
        std::sort(candidates.begin(), candidates.end(),
                  [](const Candidate &a, const Candidate &b) {
                      return a.logProb > b.logProb;
                  });

        // Select the next beam set; EOS continuations finish.
        std::vector<Candidate> chosen;
        for (const Candidate &cand : candidates) {
            if (chosen.size() >= params.beamWidth)
                break;
            if (params.stopAtEos && cand.token == eos) {
                BeamHypothesis hyp;
                hyp.tokens = live[cand.beam].tokens;
                hyp.tokens.push_back(cand.token);
                hyp.logProb = cand.logProb;
                finished.push_back(std::move(hyp));
                continue;
            }
            chosen.push_back(cand);
        }
        if (chosen.empty())
            break;

        // Decode all chosen continuations as one tree-shaped chunk:
        // each new token extends its parent beam's path over the
        // shared prompt prefix.
        DecodeChunk chunk;
        chunk.prefixLen = prompt.size();
        for (const Candidate &cand : chosen) {
            chunk.tokens.push_back(cand.token);
            chunk.parents.push_back(-1);
            chunk.extraSlots.push_back(live[cand.beam].slots);
        }
        const size_t base = cache.length();
        tensor::Tensor step_logits = model.forward(chunk, cache);

        std::vector<Beam> next;
        next.reserve(chosen.size());
        for (size_t i = 0; i < chosen.size(); ++i) {
            Beam beam;
            beam.tokens = live[chosen[i].beam].tokens;
            beam.tokens.push_back(chosen[i].token);
            beam.slots = live[chosen[i].beam].slots;
            beam.slots.push_back(base + i);
            beam.logProb = chosen[i].logProb;
            beam.logProbs =
                logDistribution(step_logits.row(i), vocab);
            next.push_back(std::move(beam));
        }
        live = std::move(next);
    }

    // Remaining live beams compete with the finished ones.
    for (const Beam &beam : live) {
        BeamHypothesis hyp;
        hyp.tokens = beam.tokens;
        hyp.logProb = beam.logProb;
        finished.push_back(std::move(hyp));
    }
    std::sort(finished.begin(), finished.end(),
              [&](const BeamHypothesis &a, const BeamHypothesis &b) {
                  return a.score(params.lengthPenalty) >
                         b.score(params.lengthPenalty);
              });
    if (finished.size() > params.beamWidth)
        finished.resize(params.beamWidth);
    return finished;
}

} // namespace model
} // namespace specinfer
