/**
 * @file
 * Binary serialization of model configurations, weights, and live
 * KV-cache state, so calibrated model pairs can be stored and
 * reloaded instead of regenerated (and, in a deployment, so real
 * checkpoints could be imported) — and so a serving snapshot can
 * capture a session's exact decoding state for crash recovery.
 *
 * Model format (little-endian, version 1):
 *   magic "SPIN", u32 version,
 *   config fields (u64/f32 in declaration order, name length-prefixed),
 *   embedding, per-layer tensors, final norm, lm head — each tensor
 *   as u64 rows, u64 cols, rows*cols f32.
 *
 * KV-cache format (version 1):
 *   magic "SPKV", u32 version, u64 layers/kvDim/capacity/length,
 *   then per layer: length key rows followed by length value rows,
 *   each kvDim f32. Only occupied rows are written; restore is
 *   byte-identical (tested by the recovery oracle).
 */

#ifndef SPECINFER_MODEL_SERIALIZATION_H
#define SPECINFER_MODEL_SERIALIZATION_H

#include <cstdint>
#include <iosfwd>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "model/config.h"
#include "model/kv_cache.h"
#include "model/transformer.h"
#include "model/weights.h"
#include "util/logging.h"

namespace specinfer {
namespace model {

/**
 * Low-level little-endian stream helpers shared by the model,
 * session, and serving-snapshot serializers. Readers abort (panic)
 * on truncated input — snapshot streams are written atomically, so
 * truncation there is corruption, unlike the journal whose reader
 * is truncation-tolerant by design (see runtime/journal.h).
 */
namespace io {

template <typename T>
inline void
writePod(std::ostream &out, T value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
inline T
readPod(std::istream &in)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    SPECINFER_CHECK(in.good(), "truncated serialized stream");
    return value;
}

/** Length-prefixed vector of POD elements (tokens, log-probs, ...). */
template <typename T>
inline void
writePodVector(std::ostream &out, const std::vector<T> &v)
{
    writePod<uint64_t>(out, v.size());
    out.write(reinterpret_cast<const char *>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
inline std::vector<T>
readPodVector(std::istream &in)
{
    uint64_t len = readPod<uint64_t>(in);
    SPECINFER_CHECK(len < (1ull << 32),
                    "implausible serialized vector length");
    std::vector<T> v(len);
    in.read(reinterpret_cast<char *>(v.data()),
            static_cast<std::streamsize>(len * sizeof(T)));
    SPECINFER_CHECK(in.good(), "truncated serialized stream");
    return v;
}

} // namespace io

/** Serialize config + weights to a stream. */
void saveModel(std::ostream &out, const ModelConfig &cfg,
               const ModelWeights &weights);

/** Load a model previously written by saveModel().
 *  Aborts (panic) on magic/version mismatch or truncated data. */
Transformer loadModel(std::istream &in);

/** Convenience: file-path variants. Fatal on I/O errors. */
void saveModelFile(const std::string &path, const Transformer &model);
Transformer loadModelFile(const std::string &path);

/** Serialize a live KV cache (occupied rows only). */
void saveKvCache(std::ostream &out, const KvCache &cache);

/** Load a KV cache previously written by saveKvCache(); the result
 *  is byte-identical to the saved cache (keys, values, length). */
KvCache loadKvCache(std::istream &in);

} // namespace model
} // namespace specinfer

#endif // SPECINFER_MODEL_SERIALIZATION_H
