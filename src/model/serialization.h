/**
 * @file
 * Binary serialization of model configurations and weights, so
 * calibrated model pairs can be stored and reloaded instead of
 * regenerated (and, in a deployment, so real checkpoints could be
 * imported).
 *
 * Format (little-endian, version 1):
 *   magic "SPIN", u32 version,
 *   config fields (u64/f32 in declaration order, name length-prefixed),
 *   embedding, per-layer tensors, final norm, lm head — each tensor
 *   as u64 rows, u64 cols, rows*cols f32.
 */

#ifndef SPECINFER_MODEL_SERIALIZATION_H
#define SPECINFER_MODEL_SERIALIZATION_H

#include <iosfwd>
#include <memory>
#include <string>

#include "model/config.h"
#include "model/transformer.h"
#include "model/weights.h"

namespace specinfer {
namespace model {

/** Serialize config + weights to a stream. */
void saveModel(std::ostream &out, const ModelConfig &cfg,
               const ModelWeights &weights);

/** Load a model previously written by saveModel().
 *  Aborts (panic) on magic/version mismatch or truncated data. */
Transformer loadModel(std::istream &in);

/** Convenience: file-path variants. Fatal on I/O errors. */
void saveModelFile(const std::string &path, const Transformer &model);
Transformer loadModelFile(const std::string &path);

} // namespace model
} // namespace specinfer

#endif // SPECINFER_MODEL_SERIALIZATION_H
