/**
 * @file
 * Key-value cache for incremental and tree-based decoding.
 *
 * The cache stores post-RoPE keys and values per layer. Tree-based
 * parallel decoding (paper §4.2) appends a whole token tree in DFS
 * order, then after verification the accepted path is kept and the
 * rejected branches are dropped via keepRows(), so the cache always
 * contains a plain sequence between iterations.
 */

#ifndef SPECINFER_MODEL_KV_CACHE_H
#define SPECINFER_MODEL_KV_CACHE_H

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace specinfer {
namespace model {

/**
 * Per-request KV cache covering all layers of one model.
 *
 * Rows are shared across all sequences of a token tree (§4.2
 * "depth-first search to update key-value cache"); slot indices are
 * handed out by allocate() and written by the transformer.
 */
class KvCache
{
  public:
    /**
     * @param n_layers Number of transformer layers cached.
     * @param kv_dim Per-token K (and V) width, nHeads * dHead.
     * @param capacity Maximum number of cached tokens.
     */
    KvCache(size_t n_layers, size_t kv_dim, size_t capacity);

    /** Number of tokens currently cached. */
    size_t length() const { return length_; }

    /** Maximum number of tokens this cache can hold. */
    size_t capacity() const { return capacity_; }

    size_t layers() const { return keys_.size(); }
    size_t kvDim() const { return kvDim_; }

    /**
     * Reserve m consecutive slots for a new decode chunk.
     * @return The first reserved slot index.
     */
    size_t allocate(size_t m);

    /**
     * Mutable key row for (layer, slot). @pre slot < length().
     *
     * Within one layer, rows are contiguous with stride kvDim():
     * slots [s, s + m) form an [m x kvDim] matrix starting at
     * keyRow(layer, s) — the batched forward path writes a whole
     * chunk's K/V through one strided GEMM on this guarantee.
     */
    float *keyRow(size_t layer, size_t slot);
    const float *keyRow(size_t layer, size_t slot) const;

    /** Mutable value row for (layer, slot). */
    float *valueRow(size_t layer, size_t slot);
    const float *valueRow(size_t layer, size_t slot) const;

    /**
     * Append externally computed post-RoPE rows (one pointer per
     * layer, each holding rows * kvDim() contiguous floats). Used by
     * prefix sharing to adopt already-resident prompt blocks instead
     * of recomputing them; chunk-layout invariance (DESIGN.md §5c)
     * makes the adopted rows bitwise identical to a local prefill.
     * @return The first slot the rows were placed in.
     */
    size_t adoptRows(size_t rows,
                     const std::vector<const float *> &layer_keys,
                     const std::vector<const float *> &layer_values);

    /** Drop all slots >= new_length (speculation rollback). */
    void truncate(size_t new_length);

    /**
     * Keep exactly the given slots (strictly ascending), compacting
     * them to the front; used after token tree verification to keep
     * the verified path and drop rejected branches.
     */
    void keepRows(const std::vector<size_t> &slots);

    /** Deep copy (used by the sequence-based decoding baseline). */
    KvCache clone() const { return *this; }

  private:
    size_t kvDim_;
    size_t capacity_;
    size_t length_ = 0;
    std::vector<tensor::Tensor> keys_;    ///< per layer [capacity x kvDim]
    std::vector<tensor::Tensor> values_;
};

} // namespace model
} // namespace specinfer

#endif // SPECINFER_MODEL_KV_CACHE_H
