/**
 * @file
 * Construction of LLMs and their paired small speculative models.
 *
 * The paper obtains SSMs as pre-trained small members of the LLM's
 * family (e.g. LLaMA-68M for LLaMA-7B) and optionally boost-tunes a
 * pool of them. With no trained checkpoints available, we build SSMs
 * as *early exits* of the LLM: an SSM shares the LLM's weights but
 * runs only the first L layers, optionally with a perturbed LM head
 * for cross-SSM diversity (the merge-based speculation pool).
 * Early exits are genuinely partially aligned with the full model,
 * which is the property speculation quality depends on; see
 * DESIGN.md §2 for the substitution rationale.
 */

#ifndef SPECINFER_MODEL_MODEL_FACTORY_H
#define SPECINFER_MODEL_MODEL_FACTORY_H

#include <cstdint>

#include "model/transformer.h"

namespace specinfer {
namespace model {

/** Build an LLM from a config (deterministic weights from cfg.seed). */
Transformer makeLlm(const ModelConfig &cfg);

/**
 * Build an early-exit SSM sharing the given LLM's weights.
 *
 * @param llm The target model to speculate for.
 * @param n_layers Number of leading layers the SSM evaluates; must
 *                 be <= the LLM's layer count.
 * @param head_noise_std Standard deviation of Gaussian noise added
 *                 to a private copy of the LM head. Zero (default)
 *                 shares the head with no copy.
 * @param noise_seed Seed for the head perturbation; distinct seeds
 *                 produce a diverse SSM pool for merge-based trees.
 */
Transformer makeEarlyExitSsm(const Transformer &llm, size_t n_layers,
                             float head_noise_std = 0.0f,
                             uint64_t noise_seed = 1);

/**
 * Build a *quantized* SSM: the first n_layers of the LLM with every
 * weight matrix fake-quantized to an n-bit grid (paper §1: SSMs as
 * quantized variants of the LLM). The returned model runs on the
 * same float kernels but behaves numerically like an n-bit model.
 */
Transformer makeQuantizedSsm(const Transformer &llm, size_t n_layers,
                             int bits);

/**
 * Build a *real int8* SSM: the first n_layers of the LLM with every
 * projection quantized to int8 storage (per-row scales, the same
 * grid makeQuantizedSsm(llm, n, 8) fake-quantizes onto) and
 * Precision::Int8 set, so Transformer::forward runs the integer GEMM
 * path. Numerically identical weights to the 8-bit fake-quant SSM —
 * acceptance rates match — but the projections actually execute in
 * int8.
 */
Transformer makeInt8Ssm(const Transformer &llm, size_t n_layers);

/**
 * Build a *pruned* SSM: the first n_layers of the LLM with the
 * given fraction of smallest-magnitude weights zeroed per matrix
 * (paper §1: SSMs as pruned variants of the LLM).
 */
Transformer makePrunedSsm(const Transformer &llm, size_t n_layers,
                          double sparsity);

} // namespace model
} // namespace specinfer

#endif // SPECINFER_MODEL_MODEL_FACTORY_H
