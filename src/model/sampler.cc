#include "model/sampler.h"

#include <algorithm>
#include <cstring>

#include "tensor/ops.h"
#include "util/logging.h"

namespace specinfer {
namespace model {

std::vector<float>
logitsToProbs(const float *logits, size_t n, const SamplingParams &params)
{
    SPECINFER_CHECK(n > 0, "empty logit row");
    std::vector<float> probs(logits, logits + n);
    tensor::softmaxRowTemperature(probs.data(), n, params.temperature);

    if (params.topK > 0 && params.topK < n) {
        std::vector<size_t> keep =
            tensor::topkRow(probs.data(), n, params.topK);
        std::vector<float> filtered(n, 0.0f);
        float total = 0.0f;
        for (size_t idx : keep) {
            filtered[idx] = probs[idx];
            total += probs[idx];
        }
        SPECINFER_CHECK(total > 0.0f, "top-k filtered all mass");
        for (float &p : filtered)
            p /= total;
        probs.swap(filtered);
    }

    if (params.topP < 1.0f) {
        SPECINFER_CHECK(params.topP > 0.0f, "topP must be in (0, 1]");
        std::vector<size_t> order(n);
        for (size_t i = 0; i < n; ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            if (probs[a] != probs[b])
                return probs[a] > probs[b];
            return a < b;
        });
        std::vector<float> filtered(n, 0.0f);
        float total = 0.0f;
        for (size_t idx : order) {
            filtered[idx] = probs[idx];
            total += probs[idx];
            if (total >= params.topP)
                break;
        }
        SPECINFER_CHECK(total > 0.0f, "top-p filtered all mass");
        for (float &p : filtered)
            p /= total;
        probs.swap(filtered);
    }
    return probs;
}

int
sampleToken(const float *logits, size_t n, const SamplingParams &params,
            util::Rng &rng)
{
    if (params.isGreedy())
        return greedyToken(logits, n);
    std::vector<float> probs = logitsToProbs(logits, n, params);
    return static_cast<int>(rng.categorical(probs));
}

int
greedyToken(const float *logits, size_t n)
{
    return static_cast<int>(tensor::argmaxRow(logits, n));
}

} // namespace model
} // namespace specinfer
