#include "model/weights.h"

#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace specinfer {
namespace model {

namespace {

void
fillGaussian(tensor::Tensor &t, util::Rng &rng, float stddev)
{
    for (size_t r = 0; r < t.rows(); ++r) {
        float *row = t.row(r);
        for (size_t c = 0; c < t.cols(); ++c)
            row[c] = static_cast<float>(rng.normal(0.0, stddev));
    }
}

} // namespace

std::shared_ptr<ModelWeights>
initWeights(const ModelConfig &cfg)
{
    cfg.validate();
    auto w = std::make_shared<ModelWeights>();

    // Init scales are intentionally independent of cfg.nLayers so
    // that a shallower config with the same seed yields an exact
    // prefix of the deeper model's layer stack (the early-exit SSM
    // property, tested by WeightsTest.ShallowConfigIsPrefixOfDeep).
    const float d = static_cast<float>(cfg.dModel);
    const float base_std = 1.0f / std::sqrt(d);
    const float resid_std = base_std * cfg.residualScale;

    // Embedding and head are seeded independently of depth so that
    // models of different depth share them when seeds match.
    {
        util::Rng rng(cfg.seed ^ 0xe3bedd1176ULL);
        w->embedding.reset(cfg.vocabSize, cfg.dModel);
        fillGaussian(w->embedding, rng, 1.0f);
        w->lmHead.reset(cfg.vocabSize, cfg.dModel);
        fillGaussian(w->lmHead, rng, base_std);
        w->finalNorm.assign(cfg.dModel, 1.0f);
    }

    w->layers.resize(cfg.nLayers);
    for (size_t i = 0; i < cfg.nLayers; ++i) {
        // Per-layer stream keyed on (seed, layer index) only: a
        // shallower config is a prefix of a deeper one.
        util::Rng rng(cfg.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
        LayerWeights &lw = w->layers[i];
        lw.wq.reset(cfg.dModel, cfg.dModel);
        lw.wk.reset(cfg.dModel, cfg.dModel);
        lw.wv.reset(cfg.dModel, cfg.dModel);
        lw.wo.reset(cfg.dModel, cfg.dModel);
        lw.wGate.reset(cfg.dFf, cfg.dModel);
        lw.wUp.reset(cfg.dFf, cfg.dModel);
        lw.wDown.reset(cfg.dModel, cfg.dFf);
        fillGaussian(lw.wq, rng, base_std);
        fillGaussian(lw.wk, rng, base_std);
        fillGaussian(lw.wv, rng, base_std);
        fillGaussian(lw.wo, rng, resid_std);
        fillGaussian(lw.wGate, rng, base_std);
        fillGaussian(lw.wUp, rng, base_std);
        fillGaussian(lw.wDown, rng,
                     cfg.residualScale /
                     std::sqrt(static_cast<float>(cfg.dFf)));
        lw.attnNorm.assign(cfg.dModel, 1.0f);
        lw.ffnNorm.assign(cfg.dModel, 1.0f);
    }
    return w;
}

void
quantizeModelWeights(ModelWeights &w)
{
    auto quantize = [](tensor::Tensor &t, tensor::QTensor &q) {
        tensor::quantizeRows(t, q);
        t = tensor::dequantize(q);
    };
    w.qLayers.resize(w.layers.size());
    for (size_t i = 0; i < w.layers.size(); ++i) {
        LayerWeights &lw = w.layers[i];
        QuantizedLayer &ql = w.qLayers[i];
        quantize(lw.wq, ql.wq);
        quantize(lw.wk, ql.wk);
        quantize(lw.wv, ql.wv);
        quantize(lw.wo, ql.wo);
        quantize(lw.wGate, ql.wGate);
        quantize(lw.wUp, ql.wUp);
        quantize(lw.wDown, ql.wDown);
    }
    quantize(w.lmHead, w.qLmHead);
}

} // namespace model
} // namespace specinfer
