#include "model/serialization.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/logging.h"

namespace specinfer {
namespace model {

namespace {

constexpr char kMagic[4] = {'S', 'P', 'I', 'N'};
constexpr uint32_t kVersion = 2;

constexpr char kKvMagic[4] = {'S', 'P', 'K', 'V'};
constexpr uint32_t kKvVersion = 1;

using io::readPod;
using io::writePod;

void
writeString(std::ostream &out, const std::string &s)
{
    writePod<uint64_t>(out, s.size());
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
readString(std::istream &in)
{
    uint64_t len = readPod<uint64_t>(in);
    SPECINFER_CHECK(len < (1u << 20), "implausible string length");
    std::string s(len, '\0');
    in.read(s.data(), static_cast<std::streamsize>(len));
    SPECINFER_CHECK(in.good(), "truncated model stream");
    return s;
}

void
writeTensor(std::ostream &out, const tensor::Tensor &t)
{
    writePod<uint64_t>(out, t.rows());
    writePod<uint64_t>(out, t.cols());
    out.write(reinterpret_cast<const char *>(t.data()),
              static_cast<std::streamsize>(t.size() * sizeof(float)));
}

tensor::Tensor
readTensor(std::istream &in)
{
    uint64_t rows = readPod<uint64_t>(in);
    uint64_t cols = readPod<uint64_t>(in);
    SPECINFER_CHECK(rows * cols < (1ull << 32),
                    "implausible tensor size");
    tensor::Tensor t(rows, cols);
    in.read(reinterpret_cast<char *>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
    SPECINFER_CHECK(in.good(), "truncated model stream");
    return t;
}

void
writeVector(std::ostream &out, const std::vector<float> &v)
{
    writePod<uint64_t>(out, v.size());
    out.write(reinterpret_cast<const char *>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(float)));
}

std::vector<float>
readVector(std::istream &in)
{
    uint64_t len = readPod<uint64_t>(in);
    SPECINFER_CHECK(len < (1u << 24), "implausible vector length");
    std::vector<float> v(len);
    in.read(reinterpret_cast<char *>(v.data()),
            static_cast<std::streamsize>(len * sizeof(float)));
    SPECINFER_CHECK(in.good(), "truncated model stream");
    return v;
}

/**
 * QTensor format: u64 rows, u64 cols, rows f32 scales, rows*cols
 * int8. The int8 payload is serialized explicitly (not re-quantized
 * from the fp32 mirror on load): round-tripping the grid twice can
 * shift a row scale by 1 ulp, and the bit-identity contracts demand
 * the loaded model compute with exactly the saved integers.
 */
void
writeQTensor(std::ostream &out, const tensor::QTensor &q)
{
    writePod<uint64_t>(out, q.rows());
    writePod<uint64_t>(out, q.cols());
    out.write(reinterpret_cast<const char *>(q.scales()),
              static_cast<std::streamsize>(q.rows() * sizeof(float)));
    out.write(reinterpret_cast<const char *>(q.data()),
              static_cast<std::streamsize>(q.size()));
}

tensor::QTensor
readQTensor(std::istream &in)
{
    uint64_t rows = readPod<uint64_t>(in);
    uint64_t cols = readPod<uint64_t>(in);
    SPECINFER_CHECK(rows * cols < (1ull << 32),
                    "implausible quantized tensor size");
    tensor::QTensor q(rows, cols);
    in.read(reinterpret_cast<char *>(q.scales()),
            static_cast<std::streamsize>(rows * sizeof(float)));
    in.read(reinterpret_cast<char *>(q.data()),
            static_cast<std::streamsize>(q.size()));
    SPECINFER_CHECK(in.good(), "truncated model stream");
    return q;
}

} // namespace

void
saveModel(std::ostream &out, const ModelConfig &cfg,
          const ModelWeights &weights)
{
    out.write(kMagic, 4);
    writePod<uint32_t>(out, kVersion);
    writeString(out, cfg.name);
    writePod<uint64_t>(out, cfg.vocabSize);
    writePod<uint64_t>(out, cfg.dModel);
    writePod<uint64_t>(out, cfg.nLayers);
    writePod<uint64_t>(out, cfg.nHeads);
    writePod<uint64_t>(out, cfg.dFf);
    writePod<uint64_t>(out, cfg.maxSeqLen);
    writePod<float>(out, cfg.ropeTheta);
    writePod<float>(out, cfg.residualScale);
    writePod<float>(out, cfg.logitScale);
    writePod<uint64_t>(out, cfg.seed);
    writePod<int32_t>(out, cfg.eosToken);
    writePod<uint8_t>(out, static_cast<uint8_t>(cfg.precision));

    writeTensor(out, weights.embedding);
    writePod<uint64_t>(out, weights.layers.size());
    for (const LayerWeights &lw : weights.layers) {
        writeTensor(out, lw.wq);
        writeTensor(out, lw.wk);
        writeTensor(out, lw.wv);
        writeTensor(out, lw.wo);
        writeTensor(out, lw.wGate);
        writeTensor(out, lw.wUp);
        writeTensor(out, lw.wDown);
        writeVector(out, lw.attnNorm);
        writeVector(out, lw.ffnNorm);
    }
    writeVector(out, weights.finalNorm);
    writeTensor(out, weights.lmHead);
    if (cfg.precision == Precision::Int8) {
        writePod<uint64_t>(out, weights.qLayers.size());
        for (const QuantizedLayer &ql : weights.qLayers) {
            writeQTensor(out, ql.wq);
            writeQTensor(out, ql.wk);
            writeQTensor(out, ql.wv);
            writeQTensor(out, ql.wo);
            writeQTensor(out, ql.wGate);
            writeQTensor(out, ql.wUp);
            writeQTensor(out, ql.wDown);
        }
        writeQTensor(out, weights.qLmHead);
    }
    SPECINFER_CHECK(out.good(), "model write failed");
}

Transformer
loadModel(std::istream &in)
{
    char magic[4];
    in.read(magic, 4);
    SPECINFER_CHECK(in.good() &&
                    std::memcmp(magic, kMagic, 4) == 0,
                    "not a SpecInfer model stream");
    uint32_t version = readPod<uint32_t>(in);
    // Version 1 predates the precision field and quantized payload;
    // such streams are always fp32 and remain loadable.
    SPECINFER_CHECK(version == 1 || version == kVersion,
                    "unsupported model version " << version);

    ModelConfig cfg;
    cfg.name = readString(in);
    cfg.vocabSize = readPod<uint64_t>(in);
    cfg.dModel = readPod<uint64_t>(in);
    cfg.nLayers = readPod<uint64_t>(in);
    cfg.nHeads = readPod<uint64_t>(in);
    cfg.dFf = readPod<uint64_t>(in);
    cfg.maxSeqLen = readPod<uint64_t>(in);
    cfg.ropeTheta = readPod<float>(in);
    cfg.residualScale = readPod<float>(in);
    cfg.logitScale = readPod<float>(in);
    cfg.seed = readPod<uint64_t>(in);
    cfg.eosToken = readPod<int32_t>(in);
    if (version >= 2) {
        uint8_t p = readPod<uint8_t>(in);
        SPECINFER_CHECK(p <= 1, "bad precision byte " << unsigned(p));
        cfg.precision = static_cast<Precision>(p);
    }
    cfg.validate();

    auto weights = std::make_shared<ModelWeights>();
    weights->embedding = readTensor(in);
    uint64_t n_layers = readPod<uint64_t>(in);
    SPECINFER_CHECK(n_layers >= cfg.nLayers,
                    "stream holds fewer layers than the config uses");
    weights->layers.resize(n_layers);
    for (uint64_t i = 0; i < n_layers; ++i) {
        LayerWeights &lw = weights->layers[i];
        lw.wq = readTensor(in);
        lw.wk = readTensor(in);
        lw.wv = readTensor(in);
        lw.wo = readTensor(in);
        lw.wGate = readTensor(in);
        lw.wUp = readTensor(in);
        lw.wDown = readTensor(in);
        lw.attnNorm = readVector(in);
        lw.ffnNorm = readVector(in);
    }
    weights->finalNorm = readVector(in);
    weights->lmHead = readTensor(in);
    if (cfg.precision == Precision::Int8) {
        uint64_t n_qlayers = readPod<uint64_t>(in);
        SPECINFER_CHECK(n_qlayers >= cfg.nLayers,
                        "stream holds fewer quantized layers than "
                        "the config uses");
        weights->qLayers.resize(n_qlayers);
        for (uint64_t i = 0; i < n_qlayers; ++i) {
            QuantizedLayer &ql = weights->qLayers[i];
            ql.wq = readQTensor(in);
            ql.wk = readQTensor(in);
            ql.wv = readQTensor(in);
            ql.wo = readQTensor(in);
            ql.wGate = readQTensor(in);
            ql.wUp = readQTensor(in);
            ql.wDown = readQTensor(in);
        }
        weights->qLmHead = readQTensor(in);
    }
    return Transformer(cfg, std::move(weights));
}

void
saveModelFile(const std::string &path, const Transformer &model)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        SPECINFER_FATAL("cannot open '" << path << "' for writing");
    saveModel(out, model.config(), *model.weights());
}

Transformer
loadModelFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        SPECINFER_FATAL("cannot open '" << path << "' for reading");
    return loadModel(in);
}

void
saveKvCache(std::ostream &out, const KvCache &cache)
{
    out.write(kKvMagic, 4);
    writePod<uint32_t>(out, kKvVersion);
    writePod<uint64_t>(out, cache.layers());
    writePod<uint64_t>(out, cache.kvDim());
    writePod<uint64_t>(out, cache.capacity());
    writePod<uint64_t>(out, cache.length());
    const std::streamsize row_bytes =
        static_cast<std::streamsize>(cache.kvDim() * sizeof(float));
    for (size_t layer = 0; layer < cache.layers(); ++layer) {
        for (size_t pos = 0; pos < cache.length(); ++pos)
            out.write(reinterpret_cast<const char *>(
                          cache.keyRow(layer, pos)),
                      row_bytes);
        for (size_t pos = 0; pos < cache.length(); ++pos)
            out.write(reinterpret_cast<const char *>(
                          cache.valueRow(layer, pos)),
                      row_bytes);
    }
    SPECINFER_CHECK(out.good(), "KV cache write failed");
}

KvCache
loadKvCache(std::istream &in)
{
    char magic[4];
    in.read(magic, 4);
    SPECINFER_CHECK(in.good() &&
                    std::memcmp(magic, kKvMagic, 4) == 0,
                    "not a SpecInfer KV cache stream");
    uint32_t version = readPod<uint32_t>(in);
    SPECINFER_CHECK(version == kKvVersion,
                    "unsupported KV cache version " << version);
    uint64_t layers = readPod<uint64_t>(in);
    uint64_t kv_dim = readPod<uint64_t>(in);
    uint64_t capacity = readPod<uint64_t>(in);
    uint64_t length = readPod<uint64_t>(in);
    SPECINFER_CHECK(layers > 0 && kv_dim > 0 && capacity > 0,
                    "degenerate KV cache header");
    SPECINFER_CHECK(length <= capacity,
                    "KV cache length exceeds capacity");
    SPECINFER_CHECK(layers * capacity * kv_dim < (1ull << 32),
                    "implausible KV cache size");
    KvCache cache(layers, kv_dim, capacity);
    cache.allocate(length);
    const std::streamsize row_bytes =
        static_cast<std::streamsize>(kv_dim * sizeof(float));
    for (size_t layer = 0; layer < layers; ++layer) {
        for (size_t pos = 0; pos < length; ++pos)
            in.read(reinterpret_cast<char *>(cache.keyRow(layer, pos)),
                    row_bytes);
        for (size_t pos = 0; pos < length; ++pos)
            in.read(reinterpret_cast<char *>(
                        cache.valueRow(layer, pos)),
                    row_bytes);
    }
    SPECINFER_CHECK(in.good(), "truncated KV cache stream");
    return cache;
}

} // namespace model
} // namespace specinfer
