#include "model/model_factory.h"

#include <functional>
#include <sstream>

#include "tensor/quant.h"
#include "util/logging.h"
#include "util/rng.h"

namespace specinfer {
namespace model {

Transformer
makeLlm(const ModelConfig &cfg)
{
    return Transformer(cfg, initWeights(cfg));
}

Transformer
makeEarlyExitSsm(const Transformer &llm, size_t n_layers,
                 float head_noise_std, uint64_t noise_seed)
{
    const ModelConfig &llm_cfg = llm.config();
    SPECINFER_CHECK(n_layers > 0 && n_layers <= llm_cfg.nLayers,
                    "early-exit depth " << n_layers
                                        << " outside [1, "
                                        << llm_cfg.nLayers << "]");
    ModelConfig cfg = llm_cfg;
    cfg.nLayers = n_layers;
    std::ostringstream name;
    name << llm_cfg.name << "-ee" << n_layers;
    if (head_noise_std > 0.0f)
        name << "-n" << noise_seed;
    cfg.name = name.str();

    if (head_noise_std <= 0.0f) {
        // Pure early exit: share the LLM's weights outright.
        return Transformer(cfg, llm.weights());
    }

    // Diverse pool member: private copy with a perturbed LM head.
    auto w = std::make_shared<ModelWeights>(*llm.weights());
    w->layers.resize(n_layers);
    util::Rng rng(noise_seed ^ 0x55edbeefULL);
    for (size_t r = 0; r < w->lmHead.rows(); ++r) {
        float *row = w->lmHead.row(r);
        for (size_t c = 0; c < w->lmHead.cols(); ++c)
            row[c] += static_cast<float>(
                rng.normal(0.0, head_noise_std));
    }
    return Transformer(cfg, std::move(w));
}

namespace {

/**
 * Copy the LLM's first n_layers, apply `compress` to every weight
 * matrix (embedding excluded: token identities stay exact), and
 * wrap in a transformer named with `tag`.
 */
Transformer
makeCompressedSsm(const Transformer &llm, size_t n_layers,
                  const std::string &tag,
                  const std::function<void(tensor::Tensor &)> &compress)
{
    const ModelConfig &llm_cfg = llm.config();
    SPECINFER_CHECK(n_layers > 0 && n_layers <= llm_cfg.nLayers,
                    "compressed-SSM depth " << n_layers
                                            << " outside [1, "
                                            << llm_cfg.nLayers << "]");
    ModelConfig cfg = llm_cfg;
    cfg.nLayers = n_layers;
    cfg.name = llm_cfg.name + "-" + tag;

    auto w = std::make_shared<ModelWeights>(*llm.weights());
    w->layers.resize(n_layers);
    for (LayerWeights &lw : w->layers) {
        compress(lw.wq);
        compress(lw.wk);
        compress(lw.wv);
        compress(lw.wo);
        compress(lw.wGate);
        compress(lw.wUp);
        compress(lw.wDown);
    }
    compress(w->lmHead);
    return Transformer(cfg, std::move(w));
}

} // namespace

Transformer
makeQuantizedSsm(const Transformer &llm, size_t n_layers, int bits)
{
    std::ostringstream tag;
    tag << "ee" << n_layers << "-q" << bits;
    return makeCompressedSsm(llm, n_layers, tag.str(),
                             [bits](tensor::Tensor &t) {
                                 tensor::fakeQuantizeRows(t, bits);
                             });
}

Transformer
makeInt8Ssm(const Transformer &llm, size_t n_layers)
{
    const ModelConfig &llm_cfg = llm.config();
    SPECINFER_CHECK(n_layers > 0 && n_layers <= llm_cfg.nLayers,
                    "int8-SSM depth " << n_layers << " outside [1, "
                                      << llm_cfg.nLayers << "]");
    ModelConfig cfg = llm_cfg;
    cfg.nLayers = n_layers;
    cfg.precision = Precision::Int8;
    std::ostringstream name;
    name << llm_cfg.name << "-ee" << n_layers << "-int8";
    cfg.name = name.str();

    // Quantize from the LLM's ORIGINAL weights, never from an
    // already-dequantized mirror: round-tripping the grid twice can
    // shift a row scale by 1 ulp and break the fake-quant identity.
    auto w = std::make_shared<ModelWeights>(*llm.weights());
    w->layers.resize(n_layers);
    quantizeModelWeights(*w);
    return Transformer(cfg, std::move(w));
}

Transformer
makePrunedSsm(const Transformer &llm, size_t n_layers,
              double sparsity)
{
    std::ostringstream tag;
    tag << "ee" << n_layers << "-p"
        << static_cast<int>(sparsity * 100.0);
    return makeCompressedSsm(llm, n_layers, tag.str(),
                             [sparsity](tensor::Tensor &t) {
                                 tensor::pruneByMagnitude(t,
                                                          sparsity);
                             });
}

} // namespace model
} // namespace specinfer
