#include "model/sequence_parallel.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace specinfer {
namespace model {

tensor::Tensor
sequenceParallelDecode(const Transformer &model, const DecodeChunk &chunk,
                       KvCache &cache, SequenceParallelStats *stats)
{
    chunk.validate();
    SPECINFER_CHECK(chunk.extraSlots.empty() &&
                    chunk.prefixLen == DecodeChunk::kWholeCache,
                    "sequence-parallel baseline handles plain tree "
                    "chunks only");
    const size_t m = chunk.size();
    SPECINFER_CHECK(m > 0, "empty decode chunk");
    const size_t base = cache.length();

    // Identify leaves: nodes that are nobody's parent.
    std::vector<bool> has_child(m, false);
    for (size_t i = 0; i < m; ++i)
        if (chunk.parents[i] >= 0)
            has_child[static_cast<size_t>(chunk.parents[i])] = true;

    tensor::Tensor logits(m, model.config().vocabSize);
    std::vector<bool> have_logits(m, false);

    // Main-cache rows for the chunk, filled from per-sequence runs.
    const size_t main_base = cache.allocate(m);
    SPECINFER_CHECK(main_base == base, "unexpected cache state");

    SequenceParallelStats local;
    const size_t kv_bytes = cache.kvDim() * sizeof(float);

    for (size_t leaf = 0; leaf < m; ++leaf) {
        if (has_child[leaf])
            continue;
        // Root-to-leaf path of chunk indices.
        std::vector<size_t> path;
        for (int32_t n = static_cast<int32_t>(leaf); n >= 0;
             n = chunk.parents[n])
            path.push_back(static_cast<size_t>(n));
        std::reverse(path.begin(), path.end());

        // One kernel per sequence, with a private copy of the prefix
        // cache (the "conflicting key-value caches" cost of §4.2).
        KvCache seq_cache = cache.clone();
        seq_cache.truncate(base);
        local.cacheRowsCopied += base;

        std::vector<int> seq_tokens(path.size());
        for (size_t j = 0; j < path.size(); ++j)
            seq_tokens[j] = chunk.tokens[path[j]];
        tensor::Tensor seq_logits = model.forward(
            DecodeChunk::sequence(seq_tokens), seq_cache);
        ++local.sequences;
        local.tokensComputed += path.size();

        // Harvest logits and main-cache KV rows for first-covered
        // nodes; K/V of a node is identical across covering paths.
        for (size_t j = 0; j < path.size(); ++j) {
            size_t node = path[j];
            if (have_logits[node])
                continue;
            have_logits[node] = true;
            std::memcpy(logits.row(node), seq_logits.row(j),
                        model.config().vocabSize * sizeof(float));
            for (size_t layer = 0; layer < cache.layers(); ++layer) {
                std::memcpy(cache.keyRow(layer, main_base + node),
                            seq_cache.keyRow(layer, base + j),
                            kv_bytes);
                std::memcpy(cache.valueRow(layer, main_base + node),
                            seq_cache.valueRow(layer, base + j),
                            kv_bytes);
            }
        }
    }

    for (size_t i = 0; i < m; ++i)
        SPECINFER_CHECK(have_logits[i], "node " << i
                        << " not covered by any root-to-leaf path");
    if (stats)
        *stats = local;
    return logits;
}

} // namespace model
} // namespace specinfer
