/**
 * @file
 * Token sampling: greedy, temperature, top-k, and top-p (nucleus).
 *
 * logitsToProbs() defines the *decoding distribution* both for the
 * LLM and for SSMs; multi-step speculative sampling (core/verifier)
 * preserves exactly this distribution per Theorem 4.2.
 */

#ifndef SPECINFER_MODEL_SAMPLER_H
#define SPECINFER_MODEL_SAMPLER_H

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace specinfer {
namespace model {

/** Decoding-distribution parameters. */
struct SamplingParams
{
    /** Softmax temperature; <= 0 degenerates to greedy (one-hot). */
    float temperature = 1.0f;

    /** Keep only the k most likely tokens (0 disables). */
    size_t topK = 0;

    /** Nucleus sampling mass in (0, 1]; 1 disables. */
    float topP = 1.0f;

    /** True when the distribution is a deterministic one-hot. */
    bool isGreedy() const { return temperature <= 0.0f; }
};

/**
 * Convert a logit row into the decoding probability distribution:
 * temperature softmax, then top-k filtering, then top-p filtering,
 * renormalized.
 */
std::vector<float> logitsToProbs(const float *logits, size_t n,
                                 const SamplingParams &params);

/** Sample a token id from the decoding distribution. */
int sampleToken(const float *logits, size_t n,
                const SamplingParams &params, util::Rng &rng);

/** Argmax token id. */
int greedyToken(const float *logits, size_t n);

} // namespace model
} // namespace specinfer

#endif // SPECINFER_MODEL_SAMPLER_H
