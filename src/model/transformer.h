/**
 * @file
 * Decoder-only transformer with tree-based parallel decoding.
 *
 * forward() processes a DecodeChunk — an arbitrary batch of new
 * tokens linked by within-chunk parent pointers. A plain sequence is
 * a chunk whose parents are {-1, 0, 1, ...}; a token tree is a chunk
 * in topological order with tree parents. Attention for chunk token
 * i covers (a) the cached prefix, (b) optional explicit extra cache
 * slots (speculated ancestors committed by an earlier chunk), and
 * (c) i's within-chunk ancestors including itself. This is exactly
 * the paper's topology-aware causal mask (§4.2), evaluated in one
 * fused pass over the chunk.
 */

#ifndef SPECINFER_MODEL_TRANSFORMER_H
#define SPECINFER_MODEL_TRANSFORMER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "model/config.h"
#include "model/kv_cache.h"
#include "model/weights.h"
#include "tensor/tensor.h"

namespace specinfer {
namespace model {

/**
 * A batch of new tokens to decode against a KV cache.
 *
 * parents[i] is the within-chunk index of token i's parent, or -1 if
 * token i's parent is already cached. Parents must precede children.
 *
 * Visibility of chunk token i under the topology-aware causal mask:
 *   - cache slots [0, prefixLen)  (the verified common prefix);
 *   - extraSlots[i]               (cached speculated ancestors,
 *                                  strictly ascending, all >=
 *                                  prefixLen; empty when unused);
 *   - within-chunk ancestors of i (derived from parents), plus i.
 *
 * Token positions for RoPE are derived:
 *   position(i) = parents[i] < 0
 *                   ? prefixLen + extraSlots[i].size()
 *                   : position(parent) + 1.
 */
struct DecodeChunk
{
    std::vector<int> tokens;
    std::vector<int32_t> parents;

    /**
     * Number of leading cache slots visible to every chunk token.
     * kWholeCache (default) resolves to the cache length at entry.
     */
    static constexpr size_t kWholeCache = static_cast<size_t>(-1);
    size_t prefixLen = kWholeCache;

    /** Optional per-token extra cache slots; empty vector = none. */
    std::vector<std::vector<size_t>> extraSlots;

    size_t size() const { return tokens.size(); }

    /** Chunk holding one token extending the cached prefix. */
    static DecodeChunk single(int token);

    /** Chunk holding a plain token sequence. */
    static DecodeChunk sequence(const std::vector<int> &tokens);

    /** Abort if sizes mismatch or parents are malformed. */
    void validate() const;
};

/**
 * Decoder-only transformer (RMSNorm + RoPE + SwiGLU), usable both as
 * the LLM token tree verifier and as a small speculative model.
 *
 * The instance does not own a KV cache; callers create one per
 * request with makeCache() so many requests can share the weights.
 */
class Transformer
{
  public:
    /**
     * @param cfg Architecture description; cfg.nLayers may be
     *            smaller than weights->layers.size() (early exit).
     * @param weights Shared immutable weights.
     */
    Transformer(ModelConfig cfg,
                std::shared_ptr<const ModelWeights> weights);

    const ModelConfig &config() const { return cfg_; }
    const std::shared_ptr<const ModelWeights> &weights() const
    {
        return weights_;
    }

    /** Create an empty KV cache sized for this model. */
    KvCache makeCache(size_t capacity = 0) const;

    /**
     * Run tree-based parallel decoding on one chunk.
     *
     * Appends chunk.size() rows to the cache (committed; the caller
     * rolls back speculative rows with truncate()/keepRows()) and
     * returns logits with shape [chunk.size() x vocabSize].
     */
    tensor::Tensor forward(const DecodeChunk &chunk, KvCache &cache) const;

    /**
     * Count of fused attention "kernels" launched so far (one per
     * forward() call); the sequence-based baseline launches one per
     * sequence, which is the contrast drawn by Figure 4. Atomic so
     * concurrent forward() calls on shared weights count exactly.
     */
    uint64_t kernelLaunches() const
    {
        return kernelLaunches_.load(std::memory_order_relaxed);
    }

  private:
    /**
     * Movable/copyable relaxed atomic counter (std::atomic itself
     * would delete Transformer's move constructor, which factories
     * and benches rely on). A snapshot copy is fine: instances are
     * only moved during construction, never mid-forward.
     */
    struct LaunchCounter
    {
        std::atomic<uint64_t> value{0};

        LaunchCounter() = default;
        LaunchCounter(const LaunchCounter &other)
            : value(other.load())
        {
        }
        LaunchCounter &operator=(const LaunchCounter &other)
        {
            value.store(other.load(), std::memory_order_relaxed);
            return *this;
        }
        uint64_t load(std::memory_order order =
                          std::memory_order_relaxed) const
        {
            return value.load(order);
        }
        void fetch_add(uint64_t n, std::memory_order order)
        {
            value.fetch_add(n, order);
        }
    };

    ModelConfig cfg_;
    std::shared_ptr<const ModelWeights> weights_;
    mutable LaunchCounter kernelLaunches_;
};

} // namespace model
} // namespace specinfer

#endif // SPECINFER_MODEL_TRANSFORMER_H
