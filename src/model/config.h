/**
 * @file
 * Architecture hyperparameters for the decoder-only transformer
 * substrate and presets mirroring the paper's model zoo.
 */

#ifndef SPECINFER_MODEL_CONFIG_H
#define SPECINFER_MODEL_CONFIG_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace specinfer {
namespace model {

/**
 * Numeric precision of a model's linear layers. Fp32 runs the float
 * GEMM path; Int8 stores projection weights as int8 + per-row scales
 * (the fakeQuantizeRows(·, 8) grid) and runs the integer GEMM path
 * with on-the-fly activation quantization. Attention, norms, RoPE,
 * and the embedding stay fp32 either way. Int8 is meant for SSMs:
 * greedy verification is lossless for any draft model, so a
 * quantized speculator buys speed without changing emitted tokens.
 */
enum class Precision : uint8_t
{
    Fp32 = 0,
    Int8 = 1,
};

/** "fp32" / "int8". */
const char *precisionName(Precision p);

/** Parse "fp32" / "int8"; aborts on anything else. */
Precision parsePrecision(const std::string &s);

/**
 * Hyperparameters of one decoder-only transformer (LLaMA-style:
 * RMSNorm, RoPE, SwiGLU MLP, tied embedding / LM head option).
 *
 * The models in this reproduction are synthetic: weights are drawn
 * deterministically from `seed`. `residual_scale` controls how much
 * each transformer block perturbs the residual stream, which in turn
 * controls how well an early-exit SSM aligns with the full model —
 * the knob we use to calibrate speculation success rates to the
 * paper's measured ranges (Table 1).
 */
struct ModelConfig
{
    /** Human-readable model name (e.g. "llama-7b-sim"). */
    std::string name = "model";

    /** Vocabulary size; token ids are in [0, vocab_size). */
    size_t vocabSize = 512;

    /** Residual stream width. */
    size_t dModel = 64;

    /** Number of transformer blocks. */
    size_t nLayers = 6;

    /** Number of attention heads; must divide dModel. */
    size_t nHeads = 4;

    /** Hidden width of the SwiGLU MLP. */
    size_t dFf = 176;

    /** Maximum sequence length (KV-cache capacity). */
    size_t maxSeqLen = 512;

    /** RoPE base frequency. */
    float ropeTheta = 10000.0f;

    /**
     * Scale applied to each block's residual contribution at weight
     * init time. Smaller values make early-exit SSMs align better
     * with the full model.
     */
    float residualScale = 0.20f;

    /** Multiplier on output logits; sharpens the LM distribution. */
    float logitScale = 4.0f;

    /** Weight-init seed; two configs differing only in layer count
     *  share all common weights when built from the same seed. */
    uint64_t seed = 42;

    /** Reserved token id signalling end of sequence. */
    int eosToken = 0;

    /** Linear-layer precision (see Precision). */
    Precision precision = Precision::Fp32;

    /**
     * Tensor-parallel degree: attention heads, MLP hidden width, and
     * the LM-head vocab are sharded across this many simulated ranks
     * (src/parallel). Must divide nHeads — a non-divisible split
     * would silently misalign the canonical reduce blocks, so
     * validate() rejects it. Logits are bit-identical at every
     * degree (see DESIGN.md §5j); 1 = the unsharded fast path.
     */
    size_t tensorParallel = 1;

    /** Per-head dimension. */
    size_t dHead() const { return dModel / nHeads; }

    /** Approximate parameter count (for the perf model and docs). */
    size_t paramCount() const;

    /** Abort if the configuration is internally inconsistent. */
    void validate() const;
};

/**
 * Named presets. The `*-sim` presets are scaled-down stand-ins for
 * the paper's models, sized so that full experiments run on one CPU
 * core; the simulator (src/simulator) separately models the real
 * models' parameter counts for latency experiments.
 */
ModelConfig llmPreset(const std::string &name);

/** Small speculative-model preset paired with llmPreset(). */
ModelConfig ssmPreset(const std::string &name);

} // namespace model
} // namespace specinfer

#endif // SPECINFER_MODEL_CONFIG_H
