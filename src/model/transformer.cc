#include "model/transformer.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"
#include "parallel/collective.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/threadpool.h"

namespace specinfer {
namespace model {

DecodeChunk
DecodeChunk::single(int token)
{
    DecodeChunk chunk;
    chunk.tokens = {token};
    chunk.parents = {-1};
    return chunk;
}

DecodeChunk
DecodeChunk::sequence(const std::vector<int> &tokens)
{
    DecodeChunk chunk;
    chunk.tokens = tokens;
    chunk.parents.resize(tokens.size());
    for (size_t i = 0; i < tokens.size(); ++i)
        chunk.parents[i] = static_cast<int32_t>(i) - 1;
    return chunk;
}

void
DecodeChunk::validate() const
{
    SPECINFER_CHECK(tokens.size() == parents.size(),
                    "chunk tokens/parents size mismatch");
    SPECINFER_CHECK(extraSlots.empty() ||
                    extraSlots.size() == tokens.size(),
                    "extraSlots must be empty or per-token");
    for (size_t i = 0; i < parents.size(); ++i) {
        SPECINFER_CHECK(parents[i] >= -1 &&
                        parents[i] < static_cast<int32_t>(i),
                        "chunk parent " << parents[i] << " at index "
                                        << i << " is not topological");
    }
}

Transformer::Transformer(ModelConfig cfg,
                         std::shared_ptr<const ModelWeights> weights)
    : cfg_(std::move(cfg)), weights_(std::move(weights))
{
    cfg_.validate();
    SPECINFER_CHECK(weights_ != nullptr, "null weights");
    SPECINFER_CHECK(cfg_.nLayers <= weights_->layers.size(),
                    "config uses " << cfg_.nLayers
                                   << " layers but weights have "
                                   << weights_->layers.size());
    if (cfg_.precision == Precision::Int8) {
        SPECINFER_CHECK(cfg_.nLayers <= weights_->qLayers.size(),
                        "int8 model uses " << cfg_.nLayers
                                           << " layers but only "
                                           << weights_->qLayers.size()
                                           << " are quantized");
        SPECINFER_CHECK(!weights_->qLmHead.empty(),
                        "int8 model without quantized LM head");
    }
}

KvCache
Transformer::makeCache(size_t capacity) const
{
    if (capacity == 0)
        capacity = cfg_.maxSeqLen;
    return KvCache(cfg_.nLayers, cfg_.dModel, capacity);
}

tensor::Tensor
Transformer::forward(const DecodeChunk &chunk, KvCache &cache) const
{
    chunk.validate();
    const size_t m = chunk.size();
    SPECINFER_CHECK(m > 0, "empty decode chunk");
    const size_t d = cfg_.dModel;
    const size_t n_heads = cfg_.nHeads;
    const size_t d_head = cfg_.dHead();
    const size_t tp = cfg_.tensorParallel;
    const float attn_scale = 1.0f / std::sqrt(static_cast<float>(d_head));

    const size_t entry_len = cache.length();
    const size_t prefix = chunk.prefixLen == DecodeChunk::kWholeCache
                              ? entry_len : chunk.prefixLen;
    SPECINFER_CHECK(prefix <= entry_len,
                    "chunk prefixLen exceeds cache length");
    const size_t base = cache.allocate(m);
    kernelLaunches_.fetch_add(1, std::memory_order_relaxed);

    // Models are constructed by factories that never see an
    // ObsContext, so the kernel layer reports through the process-
    // global context. Null context = one branch per phase boundary
    // and zero clock reads (observation only — no program state is
    // ever touched).
    obs::ObsContext *o = obs::globalObs();
    uint64_t t_kv = 0, t_q = 0, t_attn = 0, t_proj = 0, t_mlp = 0;
    auto now = [&]() -> uint64_t {
        return o != nullptr ? o->nowNanos() : 0;
    };

    // Int8 path: projections run the integer GEMM against the
    // quantized weight mirrors, with activations quantized per row
    // on the fly. Attention, norms, RoPE, residuals, and the
    // embedding stay fp32 — they are bandwidth-cheap and their
    // precision anchors the residual stream. The two scratch
    // QTensors are reused across phases and layers so the chunk
    // allocates exactly two int8 buffers per forward. t_quant and
    // t_i8gemm are sub-phase breakdowns: the existing phase timers
    // (t_kv, ...) still cover the whole phase either way.
    const bool int8 = cfg_.precision == Precision::Int8;
    tensor::QTensor q_act_d;  // [m x dModel] activation scratch
    tensor::QTensor q_act_ff; // [m x dFf] activation scratch
    uint64_t t_quant = 0, t_i8gemm = 0;
    auto quantizeInto = [&](const tensor::Tensor &src,
                            tensor::QTensor &dst) {
        const uint64_t q0 = now();
        tensor::quantizeRows(src, dst);
        t_quant += now() - q0;
    };

    // Tensor-parallel execution (DESIGN.md §5j). The forward runs as
    // orchestrated fork-join phases: forEachRank() runs one body per
    // rank — inline at tp=1 (so the unsharded path keeps the legacy
    // GEMMs' internal pool threading), on pool workers at tp>1
    // (nested GEMM parallelFors then degrade to inline, giving one
    // serial tile per rank). The collectives run on the orchestrator
    // thread between phases, after every rank body has joined.
    //
    // Determinism rule: column-parallel projections (K/V/Q, gate/up,
    // LM head) compute full-k dots — each output element is the same
    // dotRow as the unsharded kernel, bitwise. Row-parallel
    // projections (wo, wDown) split their k dimension into nHeads
    // *canonical* blocks regardless of tp; each block's [m x d]
    // partial product feeds one ordered allReduceSum fold, ascending
    // block order, at every tp including 1. Since tp divides nHeads,
    // rank shards align with canonical block boundaries (see
    // shardRange), so the fold tree — and every logit bit — is
    // independent of the rank count.
    util::ThreadPool &pool = util::ThreadPool::global();
    parallel::TpComm comm(tp);
    auto forEachRank = [&](auto &&body) {
        if (tp == 1) {
            body(size_t{0});
            return;
        }
        pool.parallelFor(0, tp, body);
    };
    auto headRange = [&](size_t r) {
        return parallel::shardRange(n_heads, tp, r);
    };

    static const std::vector<size_t> no_extras;
    auto extras_of = [&](size_t i) -> const std::vector<size_t> & {
        return chunk.extraSlots.empty() ? no_extras
                                        : chunk.extraSlots[i];
    };

    // Derive absolute positions and per-token visibility. slots[i]
    // is the full ascending list of cache slots token i attends to
    // beyond the common prefix: extra slots first, then within-chunk
    // ancestor slots (base + ancestor index), then itself.
    std::vector<size_t> positions(m);
    std::vector<std::vector<size_t>> slots(m);
    for (size_t i = 0; i < m; ++i) {
        const std::vector<size_t> &extras = extras_of(i);
        for (size_t e = 0; e < extras.size(); ++e) {
            SPECINFER_CHECK(extras[e] >= prefix && extras[e] < entry_len,
                            "extra slot " << extras[e]
                                          << " outside [prefix, entry)");
            if (e > 0)
                SPECINFER_CHECK(extras[e - 1] < extras[e],
                                "extra slots must ascend");
        }
        int32_t p = chunk.parents[i];
        if (p < 0) {
            positions[i] = prefix + extras.size();
            slots[i].assign(extras.begin(), extras.end());
        } else {
            SPECINFER_CHECK(extras.size() ==
                            extras_of(static_cast<size_t>(p)).size(),
                            "child must inherit parent's extra slots");
            positions[i] = positions[p] + 1;
            slots[i] = slots[p];
        }
        slots[i].push_back(base + i);
        SPECINFER_CHECK(positions[i] < cache.capacity(),
                        "token position exceeds cache capacity");
    }

    // Residual stream for the whole chunk.
    tensor::Tensor hidden(m, d);
    for (size_t i = 0; i < m; ++i) {
        int tok = chunk.tokens[i];
        SPECINFER_CHECK(tok >= 0 &&
                        static_cast<size_t>(tok) < cfg_.vocabSize,
                        "token " << tok << " outside vocabulary");
        const float *emb = weights_->embedding.row(tok);
        float *h = hidden.row(i);
        for (size_t c = 0; c < d; ++c)
            h[c] = emb[c];
    }

    // Chunk-wide [m x *] activation buffers. The whole layer runs as
    // batched phases over these: one GEMM per projection instead of
    // m matvec sweeps, with the shared pool splitting rows. Each
    // phase below is a barrier — e.g. every K/V row is written
    // before any token's attention reads ancestor slots.
    tensor::Tensor normed(m, d);
    tensor::Tensor q_all(m, d);
    tensor::Tensor attn_out(m, d);
    tensor::Tensor proj(m, d);
    tensor::Tensor gate(m, cfg_.dFf);
    tensor::Tensor up(m, cfg_.dFf);
    std::vector<std::vector<float>> scores_scratch(pool.threads());

    // Canonical reduce-block partials for the two row-parallel
    // projections: block b's [m x d] partial product occupies rows
    // [b*m, (b+1)*m). parts[] is the fixed ascending fold order fed
    // to allReduceSum — the same nHeads-long list at every tp.
    tensor::Tensor partials(n_heads * m, d);
    std::vector<const float *> parts(n_heads);
    for (size_t b = 0; b < n_heads; ++b)
        parts[b] = partials.row(b * m);

    // Per-token RoPE rotation tables, hoisted out of the layer loop:
    // a token's position (and thus its cos/sin pairs) is the same in
    // every layer and for both K and Q.
    tensor::Tensor rope_tab(m, d_head);
    pool.parallelFor(0, m, [&](size_t i) {
        tensor::ropeCosSin(d_head, positions[i], cfg_.ropeTheta,
                           rope_tab.row(i));
    });

    for (size_t layer = 0; layer < cfg_.nLayers; ++layer) {
        const LayerWeights &lw = weights_->layers[layer];
        const QuantizedLayer *ql =
            int8 ? &weights_->qLayers[layer] : nullptr;

        // Attention RMSNorm, once per (layer, token); both the K/V
        // and Q projections read this buffer.
        pool.parallelFor(0, m, [&](size_t i) {
            tensor::rmsnormRow(hidden.row(i), lw.attnNorm.data(), d,
                               normed.row(i));
        });

        // Phase 1: post-RoPE K and V for the whole chunk so that
        // attention below can read any ancestor's slot. This is the
        // fused single-kernel layout of §4.2; chunk slots are
        // contiguous rows [base, base + m) of the per-layer cache
        // tensors, so one strided GEMM writes them all. Column-
        // parallel by heads: rank r writes the column slice
        // [h0*d_head, h1*d_head) of each row at the same stride, so
        // the cache layout — and every value bit — is identical to
        // the unsharded path at any tp.
        uint64_t t0 = now();
        if (int8) {
            // One activation quantization of `normed` serves the K,
            // V, and Q projections below (full-row scales, so the
            // quantization grid never depends on tp).
            quantizeInto(normed, q_act_d);
        }
        uint64_t g0 = now();
        forEachRank([&](size_t r) {
            const auto hr = headRange(r);
            const size_t c0 = hr.first * d_head;
            const size_t c1 = hr.second * d_head;
            if (int8) {
                tensor::matmulTransposedBSlice(
                    q_act_d, ql->wk, 0, d, c0, c1,
                    cache.keyRow(layer, base) + c0, cache.kvDim());
                tensor::matmulTransposedBSlice(
                    q_act_d, ql->wv, 0, d, c0, c1,
                    cache.valueRow(layer, base) + c0, cache.kvDim());
            } else {
                tensor::matmulTransposedBSlice(
                    normed, lw.wk, 0, d, c0, c1,
                    cache.keyRow(layer, base) + c0, cache.kvDim());
                tensor::matmulTransposedBSlice(
                    normed, lw.wv, 0, d, c0, c1,
                    cache.valueRow(layer, base) + c0, cache.kvDim());
            }
        });
        if (int8)
            t_i8gemm += now() - g0;
        pool.parallelFor(0, m, [&](size_t i) {
            tensor::ropeRowCached(cache.keyRow(layer, base + i),
                                  n_heads, d_head, rope_tab.row(i));
        });
        uint64_t t1 = now();
        t_kv += t1 - t0;

        // Phase 2a: batched Q projection + RoPE, column-parallel by
        // heads like K/V.
        g0 = now();
        forEachRank([&](size_t r) {
            const auto hr = headRange(r);
            const size_t c0 = hr.first * d_head;
            const size_t c1 = hr.second * d_head;
            if (int8) {
                tensor::matmulTransposedBSlice(q_act_d, ql->wq, 0, d,
                                               c0, c1,
                                               q_all.data() + c0,
                                               q_all.cols());
            } else {
                tensor::matmulTransposedBSlice(normed, lw.wq, 0, d,
                                               c0, c1,
                                               q_all.data() + c0,
                                               q_all.cols());
            }
        });
        if (int8)
            t_i8gemm += now() - g0;
        pool.parallelFor(0, m, [&](size_t i) {
            tensor::ropeRowCached(q_all.row(i), n_heads, d_head,
                                  rope_tab.row(i));
        });
        uint64_t t2 = now();
        t_q += t2 - t1;

        // Phase 2b: attention under the topology-aware causal mask,
        // parallel over (rank, token) pairs — rank r owns its head
        // shard [h0, h1) of every token, writing a disjoint column
        // slice of attn_out. Loops run context-slot-outer /
        // head-inner so each cached K/V row is loaded once for all
        // local heads; a head's score row, softmax, and mix
        // accumulation are per-head computations identical to the
        // unsharded walk, so attn_out stays bit-identical at any tp
        // (at tp=1 this is exactly the legacy one-job-per-token
        // sweep). Raw per-layer K/V base pointers (rows are
        // contiguous with stride kvDim()): the slot loops below
        // index them directly instead of paying a bounds-checked
        // call per (token, slot).
        const float *k_base = cache.keyRow(layer, 0);
        const float *v_base = cache.valueRow(layer, 0);
        const size_t kv_stride = cache.kvDim();
        pool.parallelForWorker(0, tp * m, [&](size_t job,
                                              size_t worker) {
            const size_t r = job / m;
            const size_t i = job % m;
            const auto hr = headRange(r);
            const size_t h0 = hr.first;
            const size_t nh = hr.second - h0;
            const std::vector<size_t> &vis = slots[i];
            const size_t n_ctx = prefix + vis.size();
            const float *q_row = q_all.row(i);
            // scores[h * n_ctx + s]: rows of the score matrix for
            // this token's local heads h in [0, nh).
            std::vector<float> &scores = scores_scratch[worker];
            scores.resize(nh * n_ctx);
            auto score_slot = [&](size_t idx, const float *k_row) {
                for (size_t h = 0; h < nh; ++h)
                    scores[h * n_ctx + idx] = attn_scale *
                        tensor::dotRow(q_row + (h0 + h) * d_head,
                                       k_row + (h0 + h) * d_head,
                                       d_head);
            };
            for (size_t s = 0; s < prefix; ++s)
                score_slot(s, k_base + s * kv_stride);
            for (size_t a = 0; a < vis.size(); ++a)
                score_slot(prefix + a, k_base + vis[a] * kv_stride);
            for (size_t h = 0; h < nh; ++h)
                tensor::softmaxRow(scores.data() + h * n_ctx, n_ctx);

            float *out_row = attn_out.row(i);
            std::fill(out_row + h0 * d_head,
                      out_row + (h0 + nh) * d_head, 0.0f);
            auto mix_slot = [&](size_t idx, const float *v_row) {
                for (size_t h = 0; h < nh; ++h) {
                    const float wgt = scores[h * n_ctx + idx];
                    const float *vh = v_row + (h0 + h) * d_head;
                    float *out_h = out_row + (h0 + h) * d_head;
                    for (size_t c = 0; c < d_head; ++c)
                        out_h[c] += wgt * vh[c];
                }
            };
            for (size_t s = 0; s < prefix; ++s)
                mix_slot(s, v_base + s * kv_stride);
            for (size_t a = 0; a < vis.size(); ++a)
                mix_slot(prefix + a, v_base + vis[a] * kv_stride);
        });
        uint64_t t3 = now();
        t_attn += t3 - t2;

        // Phase 2c: batched output projection + residual. Row-
        // parallel: wo's k dimension (the head-major attn_out
        // columns) splits into nHeads canonical blocks — one per
        // head — and rank r computes the [m x d] partial product of
        // each block in its head shard. The orchestrator then folds
        // all nHeads partials into proj with one ordered
        // allReduceSum; the fold never sees rank boundaries, so the
        // sum is bit-identical at every tp.
        if (int8)
            quantizeInto(attn_out, q_act_d);
        g0 = now();
        forEachRank([&](size_t r) {
            const auto hr = headRange(r);
            for (size_t b = hr.first; b < hr.second; ++b) {
                if (int8) {
                    tensor::matmulTransposedBSlice(
                        q_act_d, ql->wo, b * d_head, (b + 1) * d_head,
                        0, d, partials.row(b * m), d);
                } else {
                    tensor::matmulTransposedBSlice(
                        attn_out, lw.wo, b * d_head, (b + 1) * d_head,
                        0, d, partials.row(b * m), d);
                }
            }
        });
        if (int8)
            t_i8gemm += now() - g0;
        comm.allReduceSum(parts, proj.data(), m * d);
        pool.parallelFor(0, m, [&](size_t i) {
            tensor::addRow(hidden.row(i), proj.row(i), d);
        });
        uint64_t t4 = now();
        t_proj += t4 - t3;

        // Phase 3: SwiGLU MLP, batched. Column-parallel gate/up over
        // the dFf shard (full-k dots, exact), elementwise SiLU *
        // gate on the replicated buffer, then the row-parallel down
        // projection over the same nHeads canonical blocks of dFf as
        // the wo fold — rank shards align with block boundaries by
        // the shardRange nesting guarantee.
        pool.parallelFor(0, m, [&](size_t i) {
            tensor::rmsnormRow(hidden.row(i), lw.ffnNorm.data(), d,
                               normed.row(i));
        });
        if (int8)
            quantizeInto(normed, q_act_d);
        g0 = now();
        forEachRank([&](size_t r) {
            const auto fr = parallel::shardRange(cfg_.dFf, tp, r);
            if (int8) {
                tensor::matmulTransposedBSlice(
                    q_act_d, ql->wGate, 0, d, fr.first, fr.second,
                    gate.data() + fr.first, gate.cols());
                tensor::matmulTransposedBSlice(
                    q_act_d, ql->wUp, 0, d, fr.first, fr.second,
                    up.data() + fr.first, up.cols());
            } else {
                tensor::matmulTransposedBSlice(
                    normed, lw.wGate, 0, d, fr.first, fr.second,
                    gate.data() + fr.first, gate.cols());
                tensor::matmulTransposedBSlice(
                    normed, lw.wUp, 0, d, fr.first, fr.second,
                    up.data() + fr.first, up.cols());
            }
        });
        if (int8)
            t_i8gemm += now() - g0;
        pool.parallelFor(0, m, [&](size_t i) {
            tensor::siluRow(gate.row(i), cfg_.dFf);
            tensor::mulRows(gate.row(i), gate.row(i), up.row(i),
                            cfg_.dFf);
        });
        if (int8)
            quantizeInto(gate, q_act_ff);
        g0 = now();
        forEachRank([&](size_t r) {
            const auto hr = headRange(r);
            for (size_t b = hr.first; b < hr.second; ++b) {
                const auto fb =
                    parallel::shardRange(cfg_.dFf, n_heads, b);
                if (int8) {
                    tensor::matmulTransposedBSlice(
                        q_act_ff, ql->wDown, fb.first, fb.second, 0,
                        d, partials.row(b * m), d);
                } else {
                    tensor::matmulTransposedBSlice(
                        gate, lw.wDown, fb.first, fb.second, 0, d,
                        partials.row(b * m), d);
                }
            }
        });
        if (int8)
            t_i8gemm += now() - g0;
        comm.allReduceSum(parts, proj.data(), m * d);
        pool.parallelFor(0, m, [&](size_t i) {
            tensor::addRow(hidden.row(i), proj.row(i), d);
        });
        t_mlp += now() - t4;
    }

    // Final norm + LM head, batched. The head is column-parallel
    // over the vocab: full-k dots into per-rank slabs, concatenated
    // by one allGather — exact, so logits match the unsharded GEMM
    // bitwise. At tp=1 the slab and gather are skipped (the legacy
    // direct write into logits computes the same elements).
    const uint64_t t_head_start = now();
    tensor::Tensor logits(m, cfg_.vocabSize);
    pool.parallelFor(0, m, [&](size_t i) {
        tensor::rmsnormRow(hidden.row(i), weights_->finalNorm.data(),
                           d, normed.row(i));
    });
    if (int8)
        quantizeInto(normed, q_act_d);
    uint64_t g0 = now();
    if (tp == 1) {
        if (int8) {
            tensor::matmulTransposedBInto(q_act_d, weights_->qLmHead,
                                          logits.data(),
                                          logits.cols());
        } else {
            tensor::matmulTransposedB(normed, weights_->lmHead,
                                      logits);
        }
    } else {
        std::vector<tensor::Tensor> lm_shards;
        std::vector<const float *> lm_srcs(tp);
        lm_shards.reserve(tp);
        for (size_t r = 0; r < tp; ++r) {
            const auto vr =
                parallel::shardRange(cfg_.vocabSize, tp, r);
            lm_shards.emplace_back(
                m, std::max(vr.second - vr.first, size_t{1}));
            lm_srcs[r] = lm_shards[r].data();
        }
        forEachRank([&](size_t r) {
            const auto vr =
                parallel::shardRange(cfg_.vocabSize, tp, r);
            if (vr.second == vr.first)
                return;
            if (int8) {
                tensor::matmulTransposedBSlice(
                    q_act_d, weights_->qLmHead, 0, d, vr.first,
                    vr.second, lm_shards[r].data(),
                    lm_shards[r].cols());
            } else {
                tensor::matmulTransposedBSlice(
                    normed, weights_->lmHead, 0, d, vr.first,
                    vr.second, lm_shards[r].data(),
                    lm_shards[r].cols());
            }
        });
        comm.allGatherColumns(lm_srcs, m, cfg_.vocabSize,
                              logits.data());
    }
    if (int8)
        t_i8gemm += now() - g0;
    pool.parallelFor(0, m, [&](size_t i) {
        tensor::scaleRow(logits.row(i), cfg_.vocabSize,
                         cfg_.logitScale);
    });
    if (o != nullptr) {
        obs::MetricsRegistry &reg = o->metrics();
        reg.counter("model_kernel_launches")->inc();
        reg.counter("model_chunk_tokens")->inc(m);
        if (int8) {
            reg.counter("model_int8_kernel_launches")->inc();
            reg.counter("model_quantize_nanos")->inc(t_quant);
            reg.counter("model_int8_gemm_nanos")->inc(t_i8gemm);
        }
        reg.counter("model_kv_gemm_nanos")->inc(t_kv);
        reg.counter("model_q_gemm_nanos")->inc(t_q);
        reg.counter("model_attention_nanos")->inc(t_attn);
        reg.counter("model_out_proj_nanos")->inc(t_proj);
        reg.counter("model_mlp_gemm_nanos")->inc(t_mlp);
        reg.counter("model_lm_head_nanos")
            ->inc(now() - t_head_start);
        // Collective byte/call accounting for the sharded path:
        // per layer, two allReduces of exactly m*dModel*4 bytes —
        // the counts GpuPerfModel::tensorParallelComm() predicts —
        // plus one LM-head allGather of m*vocab*4 bytes. A TpComm
        // of 1 rank counts nothing, keeping unsharded runs' metric
        // catalogs unchanged.
        if (tp > 1)
            comm.publish(reg);
    }
    return logits;
}

} // namespace model
} // namespace specinfer
