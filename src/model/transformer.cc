#include "model/transformer.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace specinfer {
namespace model {

DecodeChunk
DecodeChunk::single(int token)
{
    DecodeChunk chunk;
    chunk.tokens = {token};
    chunk.parents = {-1};
    return chunk;
}

DecodeChunk
DecodeChunk::sequence(const std::vector<int> &tokens)
{
    DecodeChunk chunk;
    chunk.tokens = tokens;
    chunk.parents.resize(tokens.size());
    for (size_t i = 0; i < tokens.size(); ++i)
        chunk.parents[i] = static_cast<int32_t>(i) - 1;
    return chunk;
}

void
DecodeChunk::validate() const
{
    SPECINFER_CHECK(tokens.size() == parents.size(),
                    "chunk tokens/parents size mismatch");
    SPECINFER_CHECK(extraSlots.empty() ||
                    extraSlots.size() == tokens.size(),
                    "extraSlots must be empty or per-token");
    for (size_t i = 0; i < parents.size(); ++i) {
        SPECINFER_CHECK(parents[i] >= -1 &&
                        parents[i] < static_cast<int32_t>(i),
                        "chunk parent " << parents[i] << " at index "
                                        << i << " is not topological");
    }
}

Transformer::Transformer(ModelConfig cfg,
                         std::shared_ptr<const ModelWeights> weights)
    : cfg_(std::move(cfg)), weights_(std::move(weights))
{
    cfg_.validate();
    SPECINFER_CHECK(weights_ != nullptr, "null weights");
    SPECINFER_CHECK(cfg_.nLayers <= weights_->layers.size(),
                    "config uses " << cfg_.nLayers
                                   << " layers but weights have "
                                   << weights_->layers.size());
}

KvCache
Transformer::makeCache(size_t capacity) const
{
    if (capacity == 0)
        capacity = cfg_.maxSeqLen;
    return KvCache(cfg_.nLayers, cfg_.dModel, capacity);
}

tensor::Tensor
Transformer::forward(const DecodeChunk &chunk, KvCache &cache) const
{
    chunk.validate();
    const size_t m = chunk.size();
    SPECINFER_CHECK(m > 0, "empty decode chunk");
    const size_t d = cfg_.dModel;
    const size_t n_heads = cfg_.nHeads;
    const size_t d_head = cfg_.dHead();
    const float attn_scale = 1.0f / std::sqrt(static_cast<float>(d_head));

    const size_t entry_len = cache.length();
    const size_t prefix = chunk.prefixLen == DecodeChunk::kWholeCache
                              ? entry_len : chunk.prefixLen;
    SPECINFER_CHECK(prefix <= entry_len,
                    "chunk prefixLen exceeds cache length");
    const size_t base = cache.allocate(m);
    ++kernelLaunches_;

    static const std::vector<size_t> no_extras;
    auto extras_of = [&](size_t i) -> const std::vector<size_t> & {
        return chunk.extraSlots.empty() ? no_extras
                                        : chunk.extraSlots[i];
    };

    // Derive absolute positions and per-token visibility. slots[i]
    // is the full ascending list of cache slots token i attends to
    // beyond the common prefix: extra slots first, then within-chunk
    // ancestor slots (base + ancestor index), then itself.
    std::vector<size_t> positions(m);
    std::vector<std::vector<size_t>> slots(m);
    for (size_t i = 0; i < m; ++i) {
        const std::vector<size_t> &extras = extras_of(i);
        for (size_t e = 0; e < extras.size(); ++e) {
            SPECINFER_CHECK(extras[e] >= prefix && extras[e] < entry_len,
                            "extra slot " << extras[e]
                                          << " outside [prefix, entry)");
            if (e > 0)
                SPECINFER_CHECK(extras[e - 1] < extras[e],
                                "extra slots must ascend");
        }
        int32_t p = chunk.parents[i];
        if (p < 0) {
            positions[i] = prefix + extras.size();
            slots[i].assign(extras.begin(), extras.end());
        } else {
            SPECINFER_CHECK(extras.size() ==
                            extras_of(static_cast<size_t>(p)).size(),
                            "child must inherit parent's extra slots");
            positions[i] = positions[p] + 1;
            slots[i] = slots[p];
        }
        slots[i].push_back(base + i);
        SPECINFER_CHECK(positions[i] < cache.capacity(),
                        "token position exceeds cache capacity");
    }

    // Residual stream for the whole chunk.
    tensor::Tensor hidden(m, d);
    for (size_t i = 0; i < m; ++i) {
        int tok = chunk.tokens[i];
        SPECINFER_CHECK(tok >= 0 &&
                        static_cast<size_t>(tok) < cfg_.vocabSize,
                        "token " << tok << " outside vocabulary");
        const float *emb = weights_->embedding.row(tok);
        float *h = hidden.row(i);
        for (size_t c = 0; c < d; ++c)
            h[c] = emb[c];
    }

    std::vector<float> normed(d);
    std::vector<float> q(d);
    std::vector<float> attn_out(d);
    std::vector<float> proj(d);
    std::vector<float> scores;
    std::vector<float> gate(cfg_.dFf);
    std::vector<float> up(cfg_.dFf);

    for (size_t layer = 0; layer < cfg_.nLayers; ++layer) {
        const LayerWeights &lw = weights_->layers[layer];

        // Phase 1: write post-RoPE K and V for the whole chunk so
        // that attention below can read any ancestor's slot. This is
        // the fused single-kernel layout of §4.2.
        for (size_t i = 0; i < m; ++i) {
            tensor::rmsnormRow(hidden.row(i), lw.attnNorm.data(), d,
                               normed.data());
            float *k_row = cache.keyRow(layer, base + i);
            float *v_row = cache.valueRow(layer, base + i);
            tensor::matvecTransposed(normed.data(), lw.wk, k_row);
            tensor::matvecTransposed(normed.data(), lw.wv, v_row);
            tensor::ropeRow(k_row, n_heads, d_head, positions[i],
                            cfg_.ropeTheta);
        }

        // Phase 2: attention under the topology-aware causal mask.
        for (size_t i = 0; i < m; ++i) {
            tensor::rmsnormRow(hidden.row(i), lw.attnNorm.data(), d,
                               normed.data());
            tensor::matvecTransposed(normed.data(), lw.wq, q.data());
            tensor::ropeRow(q.data(), n_heads, d_head, positions[i],
                            cfg_.ropeTheta);

            const std::vector<size_t> &vis = slots[i];
            const size_t n_ctx = prefix + vis.size();
            scores.resize(n_ctx);
            for (size_t h = 0; h < n_heads; ++h) {
                const float *qh = q.data() + h * d_head;
                const size_t off = h * d_head;
                for (size_t s = 0; s < prefix; ++s)
                    scores[s] = attn_scale *
                        tensor::dotRow(qh, cache.keyRow(layer, s) + off,
                                       d_head);
                for (size_t a = 0; a < vis.size(); ++a)
                    scores[prefix + a] = attn_scale *
                        tensor::dotRow(qh,
                                       cache.keyRow(layer, vis[a]) + off,
                                       d_head);
                tensor::softmaxRow(scores.data(), n_ctx);
                float *out_h = attn_out.data() + h * d_head;
                std::fill(out_h, out_h + d_head, 0.0f);
                for (size_t s = 0; s < prefix; ++s) {
                    const float *vh = cache.valueRow(layer, s) + off;
                    const float wgt = scores[s];
                    for (size_t c = 0; c < d_head; ++c)
                        out_h[c] += wgt * vh[c];
                }
                for (size_t a = 0; a < vis.size(); ++a) {
                    const float *vh =
                        cache.valueRow(layer, vis[a]) + off;
                    const float wgt = scores[prefix + a];
                    for (size_t c = 0; c < d_head; ++c)
                        out_h[c] += wgt * vh[c];
                }
            }
            tensor::matvecTransposed(attn_out.data(), lw.wo,
                                     proj.data());
            tensor::addRow(hidden.row(i), proj.data(), d);

            // SwiGLU MLP.
            tensor::rmsnormRow(hidden.row(i), lw.ffnNorm.data(), d,
                               normed.data());
            tensor::matvecTransposed(normed.data(), lw.wGate,
                                     gate.data());
            tensor::matvecTransposed(normed.data(), lw.wUp, up.data());
            tensor::siluRow(gate.data(), cfg_.dFf);
            tensor::mulRows(gate.data(), gate.data(), up.data(),
                            cfg_.dFf);
            tensor::matvecTransposed(gate.data(), lw.wDown,
                                     proj.data());
            tensor::addRow(hidden.row(i), proj.data(), d);
        }
    }

    // Final norm + LM head.
    tensor::Tensor logits(m, cfg_.vocabSize);
    for (size_t i = 0; i < m; ++i) {
        tensor::rmsnormRow(hidden.row(i), weights_->finalNorm.data(), d,
                           normed.data());
        tensor::matvecTransposed(normed.data(), weights_->lmHead,
                                 logits.row(i));
        tensor::scaleRow(logits.row(i), cfg_.vocabSize, cfg_.logitScale);
    }
    return logits;
}

} // namespace model
} // namespace specinfer
