#include "model/transformer.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/threadpool.h"

namespace specinfer {
namespace model {

DecodeChunk
DecodeChunk::single(int token)
{
    DecodeChunk chunk;
    chunk.tokens = {token};
    chunk.parents = {-1};
    return chunk;
}

DecodeChunk
DecodeChunk::sequence(const std::vector<int> &tokens)
{
    DecodeChunk chunk;
    chunk.tokens = tokens;
    chunk.parents.resize(tokens.size());
    for (size_t i = 0; i < tokens.size(); ++i)
        chunk.parents[i] = static_cast<int32_t>(i) - 1;
    return chunk;
}

void
DecodeChunk::validate() const
{
    SPECINFER_CHECK(tokens.size() == parents.size(),
                    "chunk tokens/parents size mismatch");
    SPECINFER_CHECK(extraSlots.empty() ||
                    extraSlots.size() == tokens.size(),
                    "extraSlots must be empty or per-token");
    for (size_t i = 0; i < parents.size(); ++i) {
        SPECINFER_CHECK(parents[i] >= -1 &&
                        parents[i] < static_cast<int32_t>(i),
                        "chunk parent " << parents[i] << " at index "
                                        << i << " is not topological");
    }
}

Transformer::Transformer(ModelConfig cfg,
                         std::shared_ptr<const ModelWeights> weights)
    : cfg_(std::move(cfg)), weights_(std::move(weights))
{
    cfg_.validate();
    SPECINFER_CHECK(weights_ != nullptr, "null weights");
    SPECINFER_CHECK(cfg_.nLayers <= weights_->layers.size(),
                    "config uses " << cfg_.nLayers
                                   << " layers but weights have "
                                   << weights_->layers.size());
    if (cfg_.precision == Precision::Int8) {
        SPECINFER_CHECK(cfg_.nLayers <= weights_->qLayers.size(),
                        "int8 model uses " << cfg_.nLayers
                                           << " layers but only "
                                           << weights_->qLayers.size()
                                           << " are quantized");
        SPECINFER_CHECK(!weights_->qLmHead.empty(),
                        "int8 model without quantized LM head");
    }
}

KvCache
Transformer::makeCache(size_t capacity) const
{
    if (capacity == 0)
        capacity = cfg_.maxSeqLen;
    return KvCache(cfg_.nLayers, cfg_.dModel, capacity);
}

tensor::Tensor
Transformer::forward(const DecodeChunk &chunk, KvCache &cache) const
{
    chunk.validate();
    const size_t m = chunk.size();
    SPECINFER_CHECK(m > 0, "empty decode chunk");
    const size_t d = cfg_.dModel;
    const size_t n_heads = cfg_.nHeads;
    const size_t d_head = cfg_.dHead();
    const float attn_scale = 1.0f / std::sqrt(static_cast<float>(d_head));

    const size_t entry_len = cache.length();
    const size_t prefix = chunk.prefixLen == DecodeChunk::kWholeCache
                              ? entry_len : chunk.prefixLen;
    SPECINFER_CHECK(prefix <= entry_len,
                    "chunk prefixLen exceeds cache length");
    const size_t base = cache.allocate(m);
    kernelLaunches_.fetch_add(1, std::memory_order_relaxed);

    // Models are constructed by factories that never see an
    // ObsContext, so the kernel layer reports through the process-
    // global context. Null context = one branch per phase boundary
    // and zero clock reads (observation only — no program state is
    // ever touched).
    obs::ObsContext *o = obs::globalObs();
    uint64_t t_kv = 0, t_q = 0, t_attn = 0, t_proj = 0, t_mlp = 0;
    auto now = [&]() -> uint64_t {
        return o != nullptr ? o->nowNanos() : 0;
    };

    // Int8 path: projections run the integer GEMM against the
    // quantized weight mirrors, with activations quantized per row
    // on the fly. Attention, norms, RoPE, residuals, and the
    // embedding stay fp32 — they are bandwidth-cheap and their
    // precision anchors the residual stream. The two scratch
    // QTensors are reused across phases and layers so the chunk
    // allocates exactly two int8 buffers per forward. t_quant and
    // t_i8gemm are sub-phase breakdowns: the existing phase timers
    // (t_kv, ...) still cover the whole phase either way.
    const bool int8 = cfg_.precision == Precision::Int8;
    tensor::QTensor q_act_d;  // [m x dModel] activation scratch
    tensor::QTensor q_act_ff; // [m x dFf] activation scratch
    uint64_t t_quant = 0, t_i8gemm = 0;
    auto quantizeInto = [&](const tensor::Tensor &src,
                            tensor::QTensor &dst) {
        const uint64_t q0 = now();
        tensor::quantizeRows(src, dst);
        t_quant += now() - q0;
    };
    auto gemmI8 = [&](const tensor::QTensor &a,
                      const tensor::QTensor &b, float *out,
                      size_t stride) {
        const uint64_t g0 = now();
        tensor::matmulTransposedBInto(a, b, out, stride);
        t_i8gemm += now() - g0;
    };

    static const std::vector<size_t> no_extras;
    auto extras_of = [&](size_t i) -> const std::vector<size_t> & {
        return chunk.extraSlots.empty() ? no_extras
                                        : chunk.extraSlots[i];
    };

    // Derive absolute positions and per-token visibility. slots[i]
    // is the full ascending list of cache slots token i attends to
    // beyond the common prefix: extra slots first, then within-chunk
    // ancestor slots (base + ancestor index), then itself.
    std::vector<size_t> positions(m);
    std::vector<std::vector<size_t>> slots(m);
    for (size_t i = 0; i < m; ++i) {
        const std::vector<size_t> &extras = extras_of(i);
        for (size_t e = 0; e < extras.size(); ++e) {
            SPECINFER_CHECK(extras[e] >= prefix && extras[e] < entry_len,
                            "extra slot " << extras[e]
                                          << " outside [prefix, entry)");
            if (e > 0)
                SPECINFER_CHECK(extras[e - 1] < extras[e],
                                "extra slots must ascend");
        }
        int32_t p = chunk.parents[i];
        if (p < 0) {
            positions[i] = prefix + extras.size();
            slots[i].assign(extras.begin(), extras.end());
        } else {
            SPECINFER_CHECK(extras.size() ==
                            extras_of(static_cast<size_t>(p)).size(),
                            "child must inherit parent's extra slots");
            positions[i] = positions[p] + 1;
            slots[i] = slots[p];
        }
        slots[i].push_back(base + i);
        SPECINFER_CHECK(positions[i] < cache.capacity(),
                        "token position exceeds cache capacity");
    }

    // Residual stream for the whole chunk.
    tensor::Tensor hidden(m, d);
    for (size_t i = 0; i < m; ++i) {
        int tok = chunk.tokens[i];
        SPECINFER_CHECK(tok >= 0 &&
                        static_cast<size_t>(tok) < cfg_.vocabSize,
                        "token " << tok << " outside vocabulary");
        const float *emb = weights_->embedding.row(tok);
        float *h = hidden.row(i);
        for (size_t c = 0; c < d; ++c)
            h[c] = emb[c];
    }

    // Chunk-wide [m x *] activation buffers. The whole layer runs as
    // batched phases over these: one GEMM per projection instead of
    // m matvec sweeps, with the shared pool splitting rows. Each
    // phase below is a barrier — e.g. every K/V row is written
    // before any token's attention reads ancestor slots.
    util::ThreadPool &pool = util::ThreadPool::global();
    tensor::Tensor normed(m, d);
    tensor::Tensor q_all(m, d);
    tensor::Tensor attn_out(m, d);
    tensor::Tensor proj(m, d);
    tensor::Tensor gate(m, cfg_.dFf);
    tensor::Tensor up(m, cfg_.dFf);
    std::vector<std::vector<float>> scores_scratch(pool.threads());

    // Per-token RoPE rotation tables, hoisted out of the layer loop:
    // a token's position (and thus its cos/sin pairs) is the same in
    // every layer and for both K and Q.
    tensor::Tensor rope_tab(m, d_head);
    pool.parallelFor(0, m, [&](size_t i) {
        tensor::ropeCosSin(d_head, positions[i], cfg_.ropeTheta,
                           rope_tab.row(i));
    });

    for (size_t layer = 0; layer < cfg_.nLayers; ++layer) {
        const LayerWeights &lw = weights_->layers[layer];
        const QuantizedLayer *ql =
            int8 ? &weights_->qLayers[layer] : nullptr;

        // Attention RMSNorm, once per (layer, token); both the K/V
        // and Q projections read this buffer.
        pool.parallelFor(0, m, [&](size_t i) {
            tensor::rmsnormRow(hidden.row(i), lw.attnNorm.data(), d,
                               normed.row(i));
        });

        // Phase 1: post-RoPE K and V for the whole chunk so that
        // attention below can read any ancestor's slot. This is the
        // fused single-kernel layout of §4.2; chunk slots are
        // contiguous rows [base, base + m) of the per-layer cache
        // tensors, so one strided GEMM writes them all.
        uint64_t t0 = now();
        if (int8) {
            // One activation quantization of `normed` serves the K,
            // V, and Q projections below.
            quantizeInto(normed, q_act_d);
            gemmI8(q_act_d, ql->wk, cache.keyRow(layer, base),
                   cache.kvDim());
            gemmI8(q_act_d, ql->wv, cache.valueRow(layer, base),
                   cache.kvDim());
        } else {
            tensor::matmulTransposedBInto(normed, lw.wk,
                                          cache.keyRow(layer, base),
                                          cache.kvDim());
            tensor::matmulTransposedBInto(normed, lw.wv,
                                          cache.valueRow(layer, base),
                                          cache.kvDim());
        }
        pool.parallelFor(0, m, [&](size_t i) {
            tensor::ropeRowCached(cache.keyRow(layer, base + i),
                                  n_heads, d_head, rope_tab.row(i));
        });
        uint64_t t1 = now();
        t_kv += t1 - t0;

        // Phase 2a: batched Q projection + RoPE.
        if (int8)
            gemmI8(q_act_d, ql->wq, q_all.data(), q_all.cols());
        else
            tensor::matmulTransposedB(normed, lw.wq, q_all);
        pool.parallelFor(0, m, [&](size_t i) {
            tensor::ropeRowCached(q_all.row(i), n_heads, d_head,
                                  rope_tab.row(i));
        });
        uint64_t t2 = now();
        t_q += t2 - t1;

        // Phase 2b: attention under the topology-aware causal mask,
        // parallel over tokens. Loops run context-slot-outer /
        // head-inner so each cached K/V row is loaded once for all
        // heads; for any fixed output element the accumulation order
        // over slots is unchanged (prefix ascending, then ancestor
        // slots), so logits stay bit-identical to the per-head walk.
        // Raw per-layer K/V base pointers (rows are contiguous with
        // stride kvDim()): the slot loops below index them directly
        // instead of paying a bounds-checked call per (token, slot).
        const float *k_base = cache.keyRow(layer, 0);
        const float *v_base = cache.valueRow(layer, 0);
        const size_t kv_stride = cache.kvDim();
        pool.parallelForWorker(0, m, [&](size_t i, size_t worker) {
            const std::vector<size_t> &vis = slots[i];
            const size_t n_ctx = prefix + vis.size();
            const float *q_row = q_all.row(i);
            // scores[h * n_ctx + s]: per-head rows of the score
            // matrix for this token.
            std::vector<float> &scores = scores_scratch[worker];
            scores.resize(n_heads * n_ctx);
            auto score_slot = [&](size_t idx, const float *k_row) {
                for (size_t h = 0; h < n_heads; ++h)
                    scores[h * n_ctx + idx] = attn_scale *
                        tensor::dotRow(q_row + h * d_head,
                                       k_row + h * d_head, d_head);
            };
            for (size_t s = 0; s < prefix; ++s)
                score_slot(s, k_base + s * kv_stride);
            for (size_t a = 0; a < vis.size(); ++a)
                score_slot(prefix + a, k_base + vis[a] * kv_stride);
            for (size_t h = 0; h < n_heads; ++h)
                tensor::softmaxRow(scores.data() + h * n_ctx, n_ctx);

            float *out_row = attn_out.row(i);
            std::fill(out_row, out_row + d, 0.0f);
            auto mix_slot = [&](size_t idx, const float *v_row) {
                for (size_t h = 0; h < n_heads; ++h) {
                    const float wgt = scores[h * n_ctx + idx];
                    const float *vh = v_row + h * d_head;
                    float *out_h = out_row + h * d_head;
                    for (size_t c = 0; c < d_head; ++c)
                        out_h[c] += wgt * vh[c];
                }
            };
            for (size_t s = 0; s < prefix; ++s)
                mix_slot(s, v_base + s * kv_stride);
            for (size_t a = 0; a < vis.size(); ++a)
                mix_slot(prefix + a, v_base + vis[a] * kv_stride);
        });
        uint64_t t3 = now();
        t_attn += t3 - t2;

        // Phase 2c: batched output projection + residual.
        if (int8) {
            quantizeInto(attn_out, q_act_d);
            gemmI8(q_act_d, ql->wo, proj.data(), proj.cols());
        } else {
            tensor::matmulTransposedB(attn_out, lw.wo, proj);
        }
        pool.parallelFor(0, m, [&](size_t i) {
            tensor::addRow(hidden.row(i), proj.row(i), d);
        });
        uint64_t t4 = now();
        t_proj += t4 - t3;

        // Phase 3: SwiGLU MLP, batched.
        pool.parallelFor(0, m, [&](size_t i) {
            tensor::rmsnormRow(hidden.row(i), lw.ffnNorm.data(), d,
                               normed.row(i));
        });
        if (int8) {
            quantizeInto(normed, q_act_d);
            gemmI8(q_act_d, ql->wGate, gate.data(), gate.cols());
            gemmI8(q_act_d, ql->wUp, up.data(), up.cols());
        } else {
            tensor::matmulTransposedB(normed, lw.wGate, gate);
            tensor::matmulTransposedB(normed, lw.wUp, up);
        }
        pool.parallelFor(0, m, [&](size_t i) {
            tensor::siluRow(gate.row(i), cfg_.dFf);
            tensor::mulRows(gate.row(i), gate.row(i), up.row(i),
                            cfg_.dFf);
        });
        if (int8) {
            quantizeInto(gate, q_act_ff);
            gemmI8(q_act_ff, ql->wDown, proj.data(), proj.cols());
        } else {
            tensor::matmulTransposedB(gate, lw.wDown, proj);
        }
        pool.parallelFor(0, m, [&](size_t i) {
            tensor::addRow(hidden.row(i), proj.row(i), d);
        });
        t_mlp += now() - t4;
    }

    // Final norm + LM head, batched.
    const uint64_t t_head_start = now();
    tensor::Tensor logits(m, cfg_.vocabSize);
    pool.parallelFor(0, m, [&](size_t i) {
        tensor::rmsnormRow(hidden.row(i), weights_->finalNorm.data(),
                           d, normed.row(i));
    });
    if (int8) {
        quantizeInto(normed, q_act_d);
        gemmI8(q_act_d, weights_->qLmHead, logits.data(),
               logits.cols());
    } else {
        tensor::matmulTransposedB(normed, weights_->lmHead, logits);
    }
    pool.parallelFor(0, m, [&](size_t i) {
        tensor::scaleRow(logits.row(i), cfg_.vocabSize,
                         cfg_.logitScale);
    });
    if (o != nullptr) {
        obs::MetricsRegistry &reg = o->metrics();
        reg.counter("model_kernel_launches")->inc();
        reg.counter("model_chunk_tokens")->inc(m);
        if (int8) {
            reg.counter("model_int8_kernel_launches")->inc();
            reg.counter("model_quantize_nanos")->inc(t_quant);
            reg.counter("model_int8_gemm_nanos")->inc(t_i8gemm);
        }
        reg.counter("model_kv_gemm_nanos")->inc(t_kv);
        reg.counter("model_q_gemm_nanos")->inc(t_q);
        reg.counter("model_attention_nanos")->inc(t_attn);
        reg.counter("model_out_proj_nanos")->inc(t_proj);
        reg.counter("model_mlp_gemm_nanos")->inc(t_mlp);
        reg.counter("model_lm_head_nanos")
            ->inc(now() - t_head_start);
    }
    return logits;
}

} // namespace model
} // namespace specinfer
