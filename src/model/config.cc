#include "model/config.h"

#include "util/logging.h"
#include "util/rng.h"

namespace specinfer {
namespace model {

const char *
precisionName(Precision p)
{
    return p == Precision::Int8 ? "int8" : "fp32";
}

Precision
parsePrecision(const std::string &s)
{
    if (s == "fp32")
        return Precision::Fp32;
    if (s == "int8")
        return Precision::Int8;
    SPECINFER_FATAL("unknown precision '" << s
                    << "' (expected fp32 or int8)");
}

size_t
ModelConfig::paramCount() const
{
    size_t per_layer = 4 * dModel * dModel   // wq, wk, wv, wo
                     + 3 * dModel * dFf      // gate, up, down
                     + 2 * dModel;           // two norm gains
    return vocabSize * dModel                // embedding
         + nLayers * per_layer
         + dModel                            // final norm
         + vocabSize * dModel;               // lm head
}

void
ModelConfig::validate() const
{
    SPECINFER_CHECK(vocabSize >= 2, "vocab must hold EOS + 1 token");
    SPECINFER_CHECK(dModel > 0 && nHeads > 0, "empty model");
    SPECINFER_CHECK(dModel % nHeads == 0, "nHeads must divide dModel");
    SPECINFER_CHECK(dHead() % 2 == 0, "RoPE needs even head dim");
    SPECINFER_CHECK(nLayers > 0, "model needs at least one layer");
    SPECINFER_CHECK(dFf > 0, "MLP hidden width must be positive");
    SPECINFER_CHECK(maxSeqLen > 1, "sequence capacity too small");
    SPECINFER_CHECK(eosToken >= 0 &&
                    static_cast<size_t>(eosToken) < vocabSize,
                    "EOS token outside vocabulary");
    SPECINFER_CHECK(tensorParallel >= 1,
                    "tensor-parallel degree must be >= 1");
    SPECINFER_CHECK(nHeads % tensorParallel == 0,
                    "tensor-parallel degree " << tensorParallel
                    << " must divide nHeads=" << nHeads
                    << " (non-divisible head splits would misalign "
                       "the canonical reduce blocks)");
}

namespace {

ModelConfig
baseConfig(const std::string &name)
{
    ModelConfig cfg;
    cfg.name = name;
    cfg.seed = util::hashString(name.c_str());
    return cfg;
}

} // namespace

ModelConfig
llmPreset(const std::string &name)
{
    // All presets share the simulation-scale architecture; what
    // differs across model families is the seed (weight identity)
    // and depth, mirroring how LLaMA-7B / OPT-30B / LLaMA-65B differ
    // in the paper. The real parameter counts enter through the
    // hardware performance model, not through these CPU models.
    // Per-preset residualScale keeps the early-exit SSM's top-1
    // agreement with the full model in the paper's measured range
    // (~55-60%, Table 1) across depths: deeper stacks accumulate
    // more drift per layer, so they get a smaller scale.
    ModelConfig cfg = baseConfig(name);
    if (name == "llama-7b-sim") {
        cfg.nLayers = 8;
        cfg.residualScale = 0.17f;
    } else if (name == "opt-13b-sim") {
        cfg.nLayers = 10;
        cfg.residualScale = 0.17f;
    } else if (name == "opt-30b-sim") {
        cfg.nLayers = 12;
        cfg.residualScale = 0.12f;
    } else if (name == "llama-65b-sim") {
        cfg.nLayers = 14;
        cfg.residualScale = 0.11f;
    } else if (name == "tiny") {
        cfg.vocabSize = 64;
        cfg.dModel = 32;
        cfg.nHeads = 2;
        cfg.dFf = 64;
        cfg.nLayers = 4;
        cfg.maxSeqLen = 256;
    } else {
        SPECINFER_FATAL("unknown LLM preset '" << name << "'");
    }
    cfg.validate();
    return cfg;
}

ModelConfig
ssmPreset(const std::string &name)
{
    // SSM presets only describe the *shape*; actual SSMs are built
    // by makeEarlyExitSsm() so they share the paired LLM's weights.
    ModelConfig cfg = baseConfig(name);
    if (name == "llama-68m-sim") {
        cfg.nLayers = 2;
    } else if (name == "opt-125m-sim") {
        cfg.nLayers = 3;
    } else {
        SPECINFER_FATAL("unknown SSM preset '" << name << "'");
    }
    cfg.validate();
    return cfg;
}

} // namespace model
} // namespace specinfer
