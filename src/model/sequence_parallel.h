/**
 * @file
 * Sequence-based parallel decoding — the baseline that tree-based
 * parallel decoding replaces (paper Figure 4, left; evaluated in
 * Figure 11).
 *
 * A token tree is decomposed into its root-to-leaf sequences; each
 * sequence is decoded with its own cloned KV cache and its own
 * "kernel launch" (forward call), recomputing shared prefixes. The
 * result is mathematically identical to tree-based decoding, only
 * slower — tests assert bit-equality, benches measure the gap.
 */

#ifndef SPECINFER_MODEL_SEQUENCE_PARALLEL_H
#define SPECINFER_MODEL_SEQUENCE_PARALLEL_H

#include "model/transformer.h"

namespace specinfer {
namespace model {

/** Cost accounting for one sequence-parallel decode. */
struct SequenceParallelStats
{
    size_t sequences = 0;        ///< kernels launched (one per leaf)
    size_t tokensComputed = 0;   ///< token-forwards incl. redundancy
    size_t cacheRowsCopied = 0;  ///< prefix rows duplicated per clone
};

/**
 * Decode a token-tree chunk via per-sequence kernels.
 *
 * Has the same contract as Transformer::forward(): appends
 * chunk.size() rows to `cache` (in chunk order, so subsequent
 * keepRows()/truncate() behave identically) and returns logits
 * [chunk.size() x vocab], bit-identical to tree-based decoding.
 *
 * @param stats Optional cost accounting output.
 */
tensor::Tensor sequenceParallelDecode(const Transformer &model,
                                      const DecodeChunk &chunk,
                                      KvCache &cache,
                                      SequenceParallelStats *stats
                                          = nullptr);

} // namespace model
} // namespace specinfer

#endif // SPECINFER_MODEL_SEQUENCE_PARALLEL_H
