/**
 * @file
 * Beam search decoding (paper §7 "multi-sample decoding
 * techniques": SpecInfer supports beam search / top-k / top-p as
 * decoding strategies orthogonal to speculative verification).
 *
 * This implementation decodes all live beams of one request in a
 * single tree-shaped chunk per step: the beam frontier is exactly a
 * token tree over the shared prompt prefix, so beam search rides on
 * the same tree-based parallel decoding machinery as verification —
 * sharing the prompt KV cache across beams instead of duplicating
 * it per hypothesis.
 */

#ifndef SPECINFER_MODEL_BEAM_SEARCH_H
#define SPECINFER_MODEL_BEAM_SEARCH_H

#include <vector>

#include "model/transformer.h"

namespace specinfer {
namespace model {

/** Beam search parameters. */
struct BeamSearchParams
{
    /** Number of live hypotheses. */
    size_t beamWidth = 4;

    /** Tokens to generate per hypothesis. */
    size_t maxNewTokens = 32;

    /** Stop a hypothesis at the model's EOS token. */
    bool stopAtEos = true;

    /**
     * Length penalty exponent alpha: hypotheses are ranked by
     * logprob / length^alpha (0 disables normalization).
     */
    float lengthPenalty = 0.0f;
};

/** One finished hypothesis. */
struct BeamHypothesis
{
    std::vector<int> tokens;   ///< generated tokens (prompt excluded)
    double logProb = 0.0;      ///< sum of token log-probabilities

    /** Ranking score under the given length penalty. */
    double score(float length_penalty) const;
};

/**
 * Run beam search for one prompt.
 *
 * @return Hypotheses sorted by descending score, at most beamWidth.
 */
std::vector<BeamHypothesis>
beamSearch(const Transformer &model, const std::vector<int> &prompt,
           const BeamSearchParams &params);

} // namespace model
} // namespace specinfer

#endif // SPECINFER_MODEL_BEAM_SEARCH_H
