#include "model/kv_cache.h"

#include <cstring>

#include "util/logging.h"

namespace specinfer {
namespace model {

KvCache::KvCache(size_t n_layers, size_t kv_dim, size_t capacity)
    : kvDim_(kv_dim), capacity_(capacity)
{
    SPECINFER_CHECK(n_layers > 0 && kv_dim > 0 && capacity > 0,
                    "degenerate KV cache");
    keys_.reserve(n_layers);
    values_.reserve(n_layers);
    for (size_t i = 0; i < n_layers; ++i) {
        keys_.emplace_back(capacity, kv_dim);
        values_.emplace_back(capacity, kv_dim);
    }
}

size_t
KvCache::allocate(size_t m)
{
    SPECINFER_CHECK(length_ + m <= capacity_,
                    "KV cache overflow: " << length_ << " + " << m
                                          << " > " << capacity_);
    size_t base = length_;
    length_ += m;
    return base;
}

float *
KvCache::keyRow(size_t layer, size_t slot)
{
    SPECINFER_CHECK(slot < length_, "KV key slot out of range");
    return keys_[layer].row(slot);
}

const float *
KvCache::keyRow(size_t layer, size_t slot) const
{
    SPECINFER_CHECK(slot < length_, "KV key slot out of range");
    return keys_[layer].row(slot);
}

float *
KvCache::valueRow(size_t layer, size_t slot)
{
    SPECINFER_CHECK(slot < length_, "KV value slot out of range");
    return values_[layer].row(slot);
}

const float *
KvCache::valueRow(size_t layer, size_t slot) const
{
    SPECINFER_CHECK(slot < length_, "KV value slot out of range");
    return values_[layer].row(slot);
}

size_t
KvCache::adoptRows(size_t rows,
                   const std::vector<const float *> &layer_keys,
                   const std::vector<const float *> &layer_values)
{
    SPECINFER_CHECK(layer_keys.size() == keys_.size() &&
                        layer_values.size() == keys_.size(),
                    "adoptRows layer count mismatch");
    size_t base = allocate(rows);
    const size_t bytes = rows * kvDim_ * sizeof(float);
    for (size_t layer = 0; layer < keys_.size(); ++layer) {
        std::memcpy(keys_[layer].row(base), layer_keys[layer], bytes);
        std::memcpy(values_[layer].row(base), layer_values[layer], bytes);
    }
    return base;
}

void
KvCache::truncate(size_t new_length)
{
    SPECINFER_CHECK(new_length <= length_,
                    "truncate cannot grow the cache");
    length_ = new_length;
}

void
KvCache::keepRows(const std::vector<size_t> &slots)
{
    for (size_t i = 0; i < slots.size(); ++i) {
        SPECINFER_CHECK(slots[i] < length_, "keepRows slot out of range");
        if (i > 0)
            SPECINFER_CHECK(slots[i - 1] < slots[i],
                            "keepRows slots must be strictly ascending");
    }
    const size_t bytes = kvDim_ * sizeof(float);
    for (size_t layer = 0; layer < keys_.size(); ++layer) {
        for (size_t i = 0; i < slots.size(); ++i) {
            if (slots[i] == i)
                continue;
            std::memcpy(keys_[layer].row(i), keys_[layer].row(slots[i]),
                        bytes);
            std::memcpy(values_[layer].row(i),
                        values_[layer].row(slots[i]), bytes);
        }
    }
    length_ = slots.size();
}

} // namespace model
} // namespace specinfer
