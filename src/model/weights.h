/**
 * @file
 * Weight containers and deterministic initialization for the
 * transformer substrate.
 */

#ifndef SPECINFER_MODEL_WEIGHTS_H
#define SPECINFER_MODEL_WEIGHTS_H

#include <memory>
#include <vector>

#include "model/config.h"
#include "tensor/tensor.h"

namespace specinfer {
namespace model {

/** Weights of one transformer block. Linear layers are stored
 *  row-major as [out_dim x in_dim] (used with matvecTransposed). */
struct LayerWeights
{
    tensor::Tensor wq, wk, wv, wo;        ///< attention projections
    tensor::Tensor wGate, wUp, wDown;     ///< SwiGLU MLP
    std::vector<float> attnNorm;          ///< pre-attention RMSNorm gain
    std::vector<float> ffnNorm;           ///< pre-MLP RMSNorm gain
};

/** Full model weights. */
struct ModelWeights
{
    tensor::Tensor embedding;             ///< [vocab x dModel]
    std::vector<LayerWeights> layers;
    std::vector<float> finalNorm;         ///< final RMSNorm gain
    tensor::Tensor lmHead;                ///< [vocab x dModel]
};

/**
 * Deterministically initialize weights from cfg.seed.
 *
 * Layer i's weights depend only on (seed, i), so a config with fewer
 * layers but the same seed produces a strict prefix of the deeper
 * model's stack — the property early-exit SSMs rely on. Residual-path
 * projections (wo, wDown) are scaled by
 * residualScale / sqrt(nLayers) so block contributions stay modest
 * and early exits remain aligned with the full model.
 */
std::shared_ptr<ModelWeights> initWeights(const ModelConfig &cfg);

} // namespace model
} // namespace specinfer

#endif // SPECINFER_MODEL_WEIGHTS_H
