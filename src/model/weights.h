/**
 * @file
 * Weight containers and deterministic initialization for the
 * transformer substrate.
 */

#ifndef SPECINFER_MODEL_WEIGHTS_H
#define SPECINFER_MODEL_WEIGHTS_H

#include <memory>
#include <vector>

#include "model/config.h"
#include "tensor/qtensor.h"
#include "tensor/tensor.h"

namespace specinfer {
namespace model {

/** Weights of one transformer block. Linear layers are stored
 *  row-major as [out_dim x in_dim] (used with matvecTransposed). */
struct LayerWeights
{
    tensor::Tensor wq, wk, wv, wo;        ///< attention projections
    tensor::Tensor wGate, wUp, wDown;     ///< SwiGLU MLP
    std::vector<float> attnNorm;          ///< pre-attention RMSNorm gain
    std::vector<float> ffnNorm;           ///< pre-MLP RMSNorm gain
};

/** Int8 mirrors of one block's linear layers (Precision::Int8). */
struct QuantizedLayer
{
    tensor::QTensor wq, wk, wv, wo;
    tensor::QTensor wGate, wUp, wDown;
};

/** Full model weights. */
struct ModelWeights
{
    tensor::Tensor embedding;             ///< [vocab x dModel]
    std::vector<LayerWeights> layers;
    std::vector<float> finalNorm;         ///< final RMSNorm gain
    tensor::Tensor lmHead;                ///< [vocab x dModel]

    /** Int8 projection mirrors, one per layer; empty unless the
     *  owning model runs Precision::Int8 (see quantizeModelWeights).
     *  Norm gains and the embedding have no quantized form. */
    std::vector<QuantizedLayer> qLayers;
    tensor::QTensor qLmHead;              ///< int8 LM head mirror
};

/**
 * Deterministically initialize weights from cfg.seed.
 *
 * Layer i's weights depend only on (seed, i), so a config with fewer
 * layers but the same seed produces a strict prefix of the deeper
 * model's stack — the property early-exit SSMs rely on. Residual-path
 * projections (wo, wDown) are scaled by
 * residualScale / sqrt(nLayers) so block contributions stay modest
 * and early exits remain aligned with the full model.
 */
std::shared_ptr<ModelWeights> initWeights(const ModelConfig &cfg);

/**
 * Populate w's int8 mirrors (qLayers, qLmHead) from its current
 * float projections, then rewrite those float projections from the
 * quantized values. Afterwards the fp32 tensors equal
 * fakeQuantizeRows(original, 8) bit for bit, so the float and int8
 * GEMM paths see the *same* weights and any fp32 fallback (or
 * serialization of the mirror) stays on the int8 grid. Quantization
 * must run against original weights — re-quantizing an already
 * dequantized mirror can shift a scale by 1 ulp.
 */
void quantizeModelWeights(ModelWeights &w);

} // namespace model
} // namespace specinfer

#endif // SPECINFER_MODEL_WEIGHTS_H
