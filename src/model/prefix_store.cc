#include "model/prefix_store.h"

#include <cstring>

#include "util/logging.h"

namespace specinfer {
namespace model {

PrefixKvStore::PrefixKvStore(size_t n_layers, size_t kv_dim,
                             size_t block_tokens)
    : nLayers_(n_layers), kvDim_(kv_dim), blockTokens_(block_tokens)
{
    SPECINFER_CHECK(n_layers > 0 && kv_dim > 0 && block_tokens > 0,
                    "degenerate prefix store");
}

void
PrefixKvStore::declare(uint64_t hash)
{
    SPECINFER_CHECK(hash != 0, "hash 0 is the no-block sentinel");
    blocks_.emplace(hash, Block{});
}

bool
PrefixKvStore::filled(uint64_t hash) const
{
    auto it = blocks_.find(hash);
    return it != blocks_.end() && it->second.filled;
}

void
PrefixKvStore::fill(uint64_t hash, const KvCache &cache, size_t first_row)
{
    auto it = blocks_.find(hash);
    if (it == blocks_.end() || it->second.filled)
        return;
    SPECINFER_CHECK(cache.layers() == nLayers_ && cache.kvDim() == kvDim_,
                    "prefix store geometry mismatch");
    SPECINFER_CHECK(first_row + blockTokens_ <= cache.length(),
                    "fill rows exceed the source cache");
    Block &b = it->second;
    const size_t plane = blockTokens_ * kvDim_;
    b.keys.resize(nLayers_ * plane);
    b.values.resize(nLayers_ * plane);
    const size_t bytes = plane * sizeof(float);
    for (size_t layer = 0; layer < nLayers_; ++layer) {
        // Rows [first_row, first_row + blockTokens_) are contiguous
        // within a layer (KvCache stride guarantee).
        std::memcpy(&b.keys[layer * plane], cache.keyRow(layer, first_row),
                    bytes);
        std::memcpy(&b.values[layer * plane],
                    cache.valueRow(layer, first_row), bytes);
    }
    b.filled = true;
}

size_t
PrefixKvStore::adoptInto(uint64_t hash, size_t rows, KvCache *cache) const
{
    SPECINFER_CHECK(cache != nullptr, "adoptInto needs a target cache");
    SPECINFER_CHECK(rows <= blockTokens_,
                    "cannot adopt more rows than a block holds");
    auto it = blocks_.find(hash);
    if (it == blocks_.end() || !it->second.filled || rows == 0)
        return 0;
    SPECINFER_CHECK(cache->layers() == nLayers_ && cache->kvDim() == kvDim_,
                    "prefix store geometry mismatch");
    const Block &b = it->second;
    const size_t plane = blockTokens_ * kvDim_;
    std::vector<const float *> lk(nLayers_), lv(nLayers_);
    for (size_t layer = 0; layer < nLayers_; ++layer) {
        lk[layer] = &b.keys[layer * plane];
        lv[layer] = &b.values[layer * plane];
    }
    cache->adoptRows(rows, lk, lv);
    return rows;
}

size_t
PrefixKvStore::filledCount() const
{
    size_t n = 0;
    for (const auto &kv : blocks_)
        if (kv.second.filled)
            ++n;
    return n;
}

} // namespace model
} // namespace specinfer
