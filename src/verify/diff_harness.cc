#include "verify/diff_harness.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <sstream>

#include "core/spec_engine.h"
#include "model/model_factory.h"
#include "util/logging.h"
#include "util/rng.h"
#include "verify/stat_tests.h"

namespace specinfer {
namespace verify {

namespace {

/** Random prompt over [1, vocab) (avoids the EOS token id 0). */
std::vector<int>
drawPrompt(util::Rng &rng, size_t len, size_t vocab)
{
    std::vector<int> prompt;
    prompt.reserve(len);
    for (size_t i = 0; i < len; ++i)
        prompt.push_back(static_cast<int>(rng.uniformInt(
            int64_t{1}, static_cast<int64_t>(vocab) - 1)));
    return prompt;
}

/** Tiny-but-real architecture derived from the trial stream. */
model::ModelConfig
drawModelConfig(util::Rng &rng)
{
    model::ModelConfig cfg;
    cfg.name = "diff-tiny";
    cfg.vocabSize = 24 + rng.uniformInt(uint64_t{73});      // 24..96
    cfg.nHeads = 2 + 2 * rng.uniformInt(uint64_t{2});       // 2 or 4
    cfg.dModel = cfg.nHeads *
                 (4 + 4 * rng.uniformInt(uint64_t{2}));     // dHead 4/8
    cfg.dFf = 32 + 16 * rng.uniformInt(uint64_t{2});        // 32 or 48
    cfg.nLayers = 2 + rng.uniformInt(uint64_t{3});          // 2..4
    cfg.maxSeqLen = 192;
    cfg.seed = rng.next();
    return cfg;
}

std::string
joinTokens(const std::vector<int> &tokens)
{
    std::ostringstream oss;
    for (size_t i = 0; i < tokens.size(); ++i)
        oss << (i ? "," : "") << tokens[i];
    return oss.str();
}

/** Locate the node identified by a root-to-node token path. */
core::NodeId
findByPath(const core::TokenTree &tree, const std::vector<int> &path)
{
    core::NodeId u = core::TokenTree::kRoot;
    if (path.empty() || tree.node(u).token != path.front())
        return -1;
    for (size_t i = 1; i < path.size(); ++i) {
        core::NodeId next = -1;
        for (core::NodeId v : tree.node(u).children) {
            if (tree.node(v).token == path[i]) {
                next = v;
                break;
            }
        }
        if (next < 0)
            return -1;
        u = next;
    }
    return u;
}

/** Random speculated tree for one SSM id over a small vocabulary. */
core::TokenTree
drawSsmTree(util::Rng &rng, int root_token, size_t vocab, int ssm_id)
{
    core::TokenTree tree(root_token);
    std::vector<core::NodeId> frontier = {core::TokenTree::kRoot};
    const size_t depth = 1 + rng.uniformInt(uint64_t{3});
    for (size_t step = 0; step < depth; ++step) {
        std::vector<core::NodeId> next;
        for (core::NodeId u : frontier) {
            const size_t k = 1 + rng.uniformInt(uint64_t{3});
            for (size_t j = 0; j < k; ++j) {
                // Small vocab on purpose: repeated samples and
                // cross-tree collisions exercise the fold paths.
                int token = static_cast<int>(
                    rng.uniformInt(static_cast<uint64_t>(vocab)));
                next.push_back(tree.addChild(u, token, ssm_id));
            }
        }
        // Record a distribution at every frontier node so the
        // merge's distribution-union property can be checked.
        for (core::NodeId u : frontier) {
            std::vector<float> dist(vocab);
            float total = 0.0f;
            for (float &v : dist) {
                v = static_cast<float>(rng.uniform()) + 0.01f;
                total += v;
            }
            for (float &v : dist)
                v /= total;
            tree.setSsmDistribution(u, ssm_id, std::move(dist));
        }
        frontier = std::move(next);
    }
    return tree;
}

std::set<std::vector<int>>
pathSet(const core::TokenTree &tree)
{
    std::vector<std::vector<int>> paths = tree.allPaths();
    return std::set<std::vector<int>>(paths.begin(), paths.end());
}

/** Structural invariants every TokenTree must satisfy. */
bool
checkTreeStructure(const core::TokenTree &tree, std::string *why)
{
    for (size_t i = 0; i < tree.size(); ++i) {
        const core::TreeNode &n =
            tree.node(static_cast<core::NodeId>(i));
        if (i == 0) {
            if (n.parent != -1 || n.depth != 0) {
                *why = "root must have parent -1 and depth 0";
                return false;
            }
            continue;
        }
        if (n.parent < 0 || static_cast<size_t>(n.parent) >= i) {
            *why = "node order not topological at node " +
                   std::to_string(i);
            return false;
        }
        const core::TreeNode &p = tree.node(n.parent);
        if (n.depth != p.depth + 1) {
            *why = "depth mismatch at node " + std::to_string(i);
            return false;
        }
        if (n.proposals.empty()) {
            *why = "speculated node " + std::to_string(i) +
                   " has no proposals";
            return false;
        }
    }
    // Children must carry distinct tokens (Def. 3.1: one node per
    // sequence) and be reachable from their parent exactly once.
    for (size_t i = 0; i < tree.size(); ++i) {
        const core::TreeNode &n =
            tree.node(static_cast<core::NodeId>(i));
        std::set<int> tokens;
        for (core::NodeId c : n.children) {
            if (tree.node(c).parent != static_cast<core::NodeId>(i)) {
                *why = "child/parent link mismatch";
                return false;
            }
            if (!tokens.insert(tree.node(c).token).second) {
                *why = "duplicate child token under node " +
                       std::to_string(i);
                return false;
            }
        }
    }
    // Chunk conversion preserves parents and topological order.
    model::DecodeChunk chunk = tree.toChunk(-1);
    for (size_t i = 0; i < tree.size(); ++i) {
        const int32_t expect =
            i == 0 ? -1 : tree.node(static_cast<core::NodeId>(i)).parent;
        if (chunk.parents[i] != expect ||
            chunk.tokens[i] !=
                tree.node(static_cast<core::NodeId>(i)).token) {
            *why = "toChunk() parent/token mismatch at " +
                   std::to_string(i);
            return false;
        }
    }
    return true;
}

} // namespace

TrialOutcome
runGreedyTrial(uint64_t seed, bool verbose)
{
    TrialOutcome out;
    util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x1234567ULL);

    model::ModelConfig mc = drawModelConfig(rng);
    model::Transformer llm = model::makeLlm(mc);

    const size_t ssm_count = 1 + rng.uniformInt(uint64_t{2});
    std::vector<model::Transformer> ssms;
    std::ostringstream ssm_desc;
    for (size_t s = 0; s < ssm_count; ++s) {
        const size_t layers =
            1 + rng.uniformInt(static_cast<uint64_t>(mc.nLayers - 1));
        const float noise = rng.uniform() < 0.5 ? 0.0f : 0.1f;
        ssms.push_back(model::makeEarlyExitSsm(llm, layers, noise,
                                               rng.next()));
        ssm_desc << (s ? "+" : "") << layers << "L";
    }

    core::ExpansionConfig expansion;
    const size_t depth = rng.uniformInt(uint64_t{5}); // 0..4
    for (size_t i = 0; i < depth; ++i)
        expansion.widths.push_back(
            1 + rng.uniformInt(i == 0 ? uint64_t{3} : uint64_t{2}));

    core::EngineConfig cfg = core::EngineConfig::greedyDefault();
    cfg.spec.expansion = expansion;
    cfg.maxNewTokens = 6 + rng.uniformInt(uint64_t{15});
    cfg.stopAtEos = rng.uniform() < 0.5;
    cfg.seed = rng.next();
    if (rng.uniform() < 0.35)
        cfg.maxPrefillChunk = 4 + rng.uniformInt(uint64_t{8});
    const bool want_stop = rng.uniform() < 0.4;

    const size_t prompt_len = 3 + rng.uniformInt(uint64_t{30});
    std::vector<int> prompt = drawPrompt(rng, prompt_len,
                                         mc.vocabSize);

    model::SamplingParams greedy;
    greedy.temperature = 0.0f;

    // Derive a stop sequence that actually fires: a window of the
    // unconstrained reference output.
    if (want_stop) {
        util::Rng pre_rng(1);
        core::GenerationResult pre = core::incrementalGenerate(
            llm, prompt, greedy, cfg.maxNewTokens, pre_rng,
            cfg.stopAtEos);
        if (pre.tokens.size() >= 4) {
            const size_t len = 1 + rng.uniformInt(uint64_t{2});
            const size_t start = rng.uniformInt(
                static_cast<uint64_t>(pre.tokens.size() - len));
            cfg.stopSequences.push_back(std::vector<int>(
                pre.tokens.begin() + static_cast<ptrdiff_t>(start),
                pre.tokens.begin() +
                    static_cast<ptrdiff_t>(start + len)));
        }
    }

    {
        std::ostringstream oss;
        oss << "seed=" << seed << " vocab=" << mc.vocabSize
            << " layers=" << mc.nLayers << " dModel=" << mc.dModel
            << " ssms=" << ssm_desc.str()
            << " expansion=" << expansion.toString()
            << " maxNew=" << cfg.maxNewTokens
            << " prefillChunk=" << cfg.maxPrefillChunk
            << " eos=" << (cfg.stopAtEos ? 1 : 0) << " stops="
            << (cfg.stopSequences.empty()
                    ? std::string("-")
                    : joinTokens(cfg.stopSequences.front()));
        out.configLine = oss.str();
    }

    // Oracle: independent incremental greedy decoding.
    util::Rng ref_rng(2);
    core::GenerationResult ref = core::incrementalGenerate(
        llm, prompt, greedy, cfg.maxNewTokens, ref_rng, cfg.stopAtEos,
        cfg.stopSequences);

    std::vector<const model::Transformer *> pool;
    if (depth > 0)
        for (const model::Transformer &ssm : ssms)
            pool.push_back(&ssm);
    core::SpecEngine engine(&llm, pool, cfg);
    core::GenerationResult got = engine.generate(prompt, seed);

    if (verbose) {
        out.configLine += "\n  prompt: " + joinTokens(prompt) +
                          "\n  oracle: " + joinTokens(ref.tokens) +
                          "\n  engine: " + joinTokens(got.tokens);
    }

    if (got.tokens != ref.tokens) {
        size_t diverge = 0;
        while (diverge < got.tokens.size() &&
               diverge < ref.tokens.size() &&
               got.tokens[diverge] == ref.tokens[diverge])
            ++diverge;
        std::ostringstream oss;
        oss << "token mismatch at position " << diverge << ": engine "
            << got.tokens.size() << " tokens ["
            << joinTokens(got.tokens) << "] vs oracle "
            << ref.tokens.size() << " tokens ["
            << joinTokens(ref.tokens) << "]";
        out.ok = false;
        out.detail = oss.str();
        return out;
    }
    if (got.logProbs.size() != ref.logProbs.size()) {
        out.ok = false;
        out.detail = "log-prob count mismatch";
        return out;
    }
    for (size_t i = 0; i < got.logProbs.size(); ++i) {
        if (std::abs(got.logProbs[i] - ref.logProbs[i]) > 1.0e-4f) {
            out.ok = false;
            out.detail = "log-prob mismatch at token " +
                         std::to_string(i);
            return out;
        }
    }
    if (got.stats.totalGenerated() != got.tokens.size()) {
        out.ok = false;
        out.detail = "stats.totalGenerated disagrees with output";
        return out;
    }
    for (const core::StepRecord &s : got.stats.steps) {
        if (s.prefill != (s.verifiedTokens == 0)) {
            out.ok = false;
            out.detail = "prefill flag inconsistent with emission";
            return out;
        }
    }
    return out;
}

TrialOutcome
runTreeFuzzTrial(uint64_t seed)
{
    TrialOutcome out;
    util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x7654321ULL);
    const size_t vocab = 4 + rng.uniformInt(uint64_t{6}); // 4..9
    const int root = static_cast<int>(
        rng.uniformInt(static_cast<uint64_t>(vocab)));
    const size_t ssm_count = 1 + rng.uniformInt(uint64_t{3});
    out.configLine = "seed=" + std::to_string(seed) + " vocab=" +
                     std::to_string(vocab) + " ssms=" +
                     std::to_string(ssm_count);

    std::vector<core::TokenTree> sources;
    for (size_t s = 0; s < ssm_count; ++s)
        sources.push_back(drawSsmTree(rng, root, vocab,
                                      static_cast<int>(s)));

    core::TokenTree merged = sources[0];
    for (size_t s = 1; s < ssm_count; ++s)
        merged.merge(sources[s]);

    std::string why;
    for (const core::TokenTree &t : sources) {
        if (!checkTreeStructure(t, &why)) {
            out.ok = false;
            out.detail = "source tree: " + why;
            return out;
        }
    }
    if (!checkTreeStructure(merged, &why)) {
        out.ok = false;
        out.detail = "merged tree: " + why;
        return out;
    }

    // Def. 3.2: the merged path set is the union of the sources'.
    std::set<std::vector<int>> expect;
    for (const core::TokenTree &t : sources) {
        std::set<std::vector<int>> p = pathSet(t);
        expect.insert(p.begin(), p.end());
    }
    if (pathSet(merged) != expect) {
        out.ok = false;
        out.detail = "merged path set is not the union of sources";
        return out;
    }

    // Proposal-multiset union and distribution union: every source
    // node must be found in the merged tree carrying exactly that
    // source's proposal multiplicity (sources have disjoint ssm
    // ids, so per-SSM max-union preserves each count verbatim) and
    // its recorded distributions.
    for (size_t s = 0; s < ssm_count; ++s) {
        const core::TokenTree &t = sources[s];
        for (size_t i = 1; i < t.size(); ++i) {
            const core::NodeId id = static_cast<core::NodeId>(i);
            core::NodeId here = findByPath(merged, t.pathTokens(id));
            if (here < 0) {
                out.ok = false;
                out.detail = "source path missing after merge";
                return out;
            }
            size_t want = 0;
            for (int p : t.node(id).proposals)
                if (p == static_cast<int>(s))
                    ++want;
            size_t copies = 0;
            for (int p : merged.node(here).proposals)
                if (p == static_cast<int>(s))
                    ++copies;
            if (copies != want) {
                out.ok = false;
                out.detail = "ssm " + std::to_string(s) +
                             " multiplicity " + std::to_string(want) +
                             " became " + std::to_string(copies) +
                             " after merge";
                return out;
            }
        }
        for (size_t i = 0; i < t.size(); ++i) {
            const core::NodeId id = static_cast<core::NodeId>(i);
            const std::vector<float> *dist =
                t.ssmDistribution(id, static_cast<int>(s));
            if (dist == nullptr)
                continue;
            core::NodeId here = findByPath(merged, t.pathTokens(id));
            const std::vector<float> *got =
                here < 0 ? nullptr
                         : merged.ssmDistribution(here,
                                                  static_cast<int>(s));
            if (got == nullptr || *got != *dist) {
                out.ok = false;
                out.detail = "SSM distribution lost in merge";
                return out;
            }
        }
    }

    // Merge idempotence: self-merge changes nothing (node count,
    // paths, and proposal sets — the per-SSM dedup guarantee).
    core::TokenTree again = merged;
    again.merge(merged);
    if (again.size() != merged.size() ||
        pathSet(again) != pathSet(merged)) {
        out.ok = false;
        out.detail = "self-merge is not idempotent (structure)";
        return out;
    }
    for (size_t i = 0; i < merged.size(); ++i) {
        const core::NodeId id = static_cast<core::NodeId>(i);
        if (again.node(id).proposals != merged.node(id).proposals) {
            out.ok = false;
            out.detail = "self-merge duplicated proposals at node " +
                         std::to_string(i);
            return out;
        }
    }
    return out;
}

TrialOutcome
runKvRoundTripTrial(uint64_t seed)
{
    TrialOutcome out;
    util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xabcdefULL);

    model::ModelConfig mc = drawModelConfig(rng);
    model::Transformer llm = model::makeLlm(mc);
    const size_t vocab = mc.vocabSize;

    std::vector<int> seq =
        drawPrompt(rng, 3 + rng.uniformInt(uint64_t{10}), vocab);
    core::TokenTree tree =
        drawSsmTree(rng, seq.back(), vocab, /*ssm_id=*/0);

    out.configLine = "seed=" + std::to_string(seed) + " vocab=" +
                     std::to_string(vocab) + " seq=" +
                     std::to_string(seq.size()) + " tree=" +
                     std::to_string(tree.speculatedCount());

    model::KvCache cache = llm.makeCache();
    llm.forward(model::DecodeChunk::sequence(seq), cache);
    const size_t base = cache.length();

    // Decode the speculated nodes as one tree chunk; the root is the
    // already-cached last verified token, so node i maps to chunk
    // entry i - 1 and root children extend the cached prefix.
    model::DecodeChunk chunk;
    for (size_t n = 1; n < tree.size(); ++n) {
        const core::TreeNode &node =
            tree.node(static_cast<core::NodeId>(n));
        chunk.tokens.push_back(node.token);
        chunk.parents.push_back(node.parent - 1);
    }
    llm.forward(chunk, cache);

    // Accept a random root-to-node path (possibly empty).
    const core::NodeId accepted = static_cast<core::NodeId>(
        rng.uniformInt(static_cast<uint64_t>(tree.size())));
    std::vector<core::NodeId> path;
    for (core::NodeId n = accepted; n > 0; n = tree.node(n).parent)
        path.push_back(n);
    std::reverse(path.begin(), path.end());

    std::vector<size_t> keep;
    for (size_t s = 0; s < base; ++s)
        keep.push_back(s);
    for (core::NodeId n : path)
        keep.push_back(base + static_cast<size_t>(n) - 1);
    cache.keepRows(keep);

    std::vector<int> accepted_seq = seq;
    for (core::NodeId n : path)
        accepted_seq.push_back(tree.node(n).token);
    model::KvCache fresh = llm.makeCache();
    llm.forward(model::DecodeChunk::sequence(accepted_seq), fresh);

    if (cache.length() != fresh.length()) {
        out.ok = false;
        out.detail = "compacted length != fresh prefill length";
        return out;
    }
    const size_t row_bytes = cache.kvDim() * sizeof(float);
    for (size_t layer = 0; layer < cache.layers(); ++layer) {
        for (size_t slot = 0; slot < cache.length(); ++slot) {
            if (std::memcmp(cache.keyRow(layer, slot),
                            fresh.keyRow(layer, slot),
                            row_bytes) != 0 ||
                std::memcmp(cache.valueRow(layer, slot),
                            fresh.valueRow(layer, slot),
                            row_bytes) != 0) {
                out.ok = false;
                out.detail = "KV rows differ at layer " +
                             std::to_string(layer) + " slot " +
                             std::to_string(slot);
                return out;
            }
        }
    }

    // Future decoding must agree bitwise as well.
    const int probe = static_cast<int>(
        rng.uniformInt(int64_t{1}, static_cast<int64_t>(vocab) - 1));
    tensor::Tensor a =
        llm.forward(model::DecodeChunk::single(probe), cache);
    tensor::Tensor b =
        llm.forward(model::DecodeChunk::single(probe), fresh);
    for (size_t i = 0; i < a.size(); ++i) {
        if (a.data()[i] != b.data()[i]) {
            out.ok = false;
            out.detail = "post-compaction logits diverge";
            return out;
        }
    }
    return out;
}

MssCheckResult
runMssDistributionCheck(const MssCheckConfig &cfg)
{
    MssCheckResult res;
    util::Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL + 0x5151ULL);

    model::ModelConfig mc;
    mc.name = "mss-tiny";
    mc.vocabSize = 32;
    mc.dModel = 16;
    mc.nHeads = 2;
    mc.dFf = 32;
    mc.nLayers = 3;
    mc.maxSeqLen = 96;
    mc.seed = rng.next();
    model::Transformer llm = model::makeLlm(mc);

    std::vector<model::Transformer> ssms;
    for (size_t s = 0; s < cfg.ssmCount; ++s)
        ssms.push_back(model::makeEarlyExitSsm(
            llm, 1 + s % 2, /*head_noise_std=*/0.1f, rng.next()));

    core::EngineConfig engine_cfg =
        core::EngineConfig::stochasticDefault(cfg.temperature);
    engine_cfg.spec.expansion = core::ExpansionConfig::uniform(2, 2);
    engine_cfg.maxNewTokens = 1;
    engine_cfg.stopAtEos = false;
    engine_cfg.seed = rng.next();

    std::vector<int> prompt = drawPrompt(rng, 6, mc.vocabSize);

    // Exact decoding distribution at the prefix.
    std::vector<double> exact;
    {
        model::KvCache probe = llm.makeCache();
        tensor::Tensor logits = llm.forward(
            model::DecodeChunk::sequence(prompt), probe);
        std::vector<float> p = model::logitsToProbs(
            logits.row(prompt.size() - 1), mc.vocabSize,
            engine_cfg.llmSampling);
        exact.assign(p.begin(), p.end());
    }

    std::vector<const model::Transformer *> pool;
    for (const model::Transformer &ssm : ssms)
        pool.push_back(&ssm);
    core::SpecEngine engine(&llm, pool, engine_cfg);

    std::vector<size_t> spec_counts(mc.vocabSize, 0);
    std::vector<size_t> incr_counts(mc.vocabSize, 0);
    for (size_t s = 0; s < cfg.samples; ++s) {
        core::GenerationResult got =
            engine.generate(prompt, s + 1, 1);
        SPECINFER_CHECK(got.tokens.size() == 1,
                        "expected exactly one generated token");
        ++spec_counts[static_cast<size_t>(got.tokens[0])];

        util::Rng incr_rng(cfg.seed ^ (0x51ecULL + s * 2654435761ULL));
        core::GenerationResult ref = core::incrementalGenerate(
            llm, prompt, engine_cfg.llmSampling, 1, incr_rng, false);
        ++incr_counts[static_cast<size_t>(ref.tokens[0])];
    }

    ChiSquare fit = chiSquareGoodnessOfFit(spec_counts, exact);
    res.chiSquare = fit.stat;
    res.df = fit.df;
    res.critical = chiSquareCritical(fit.df, cfg.alpha);

    ChiSquare homog = chiSquareTwoSample(spec_counts, incr_counts);
    res.chiSquareTwoSample = homog.stat;
    res.dfTwoSample = homog.df;
    res.criticalTwoSample = chiSquareCritical(homog.df, cfg.alpha);

    std::vector<double> emp(mc.vocabSize, 0.0);
    for (size_t i = 0; i < spec_counts.size(); ++i)
        emp[i] = static_cast<double>(spec_counts[i]) /
                 static_cast<double>(cfg.samples);
    res.tvd = totalVariation(emp, exact);

    res.ok = res.chiSquare <= res.critical &&
             res.chiSquareTwoSample <= res.criticalTwoSample;
    if (!res.ok) {
        std::ostringstream oss;
        oss << "MSS distribution skew: chi2(spec vs exact)="
            << res.chiSquare << " crit=" << res.critical << " df="
            << res.df << "; chi2(spec vs incremental)="
            << res.chiSquareTwoSample << " crit="
            << res.criticalTwoSample << " df=" << res.dfTwoSample
            << "; tvd=" << res.tvd;
        res.detail = oss.str();
    }
    return res;
}

} // namespace verify
} // namespace specinfer
