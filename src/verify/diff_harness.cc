#include "verify/diff_harness.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <sstream>

#include "core/spec_engine.h"
#include "model/model_factory.h"
#include "obs/clock.h"
#include "obs/obs.h"
#include "runtime/journal.h"
#include "runtime/request_manager.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/rng.h"
#include "verify/stat_tests.h"

namespace specinfer {
namespace verify {

namespace {

/** Random prompt over [1, vocab) (avoids the EOS token id 0). */
std::vector<int>
drawPrompt(util::Rng &rng, size_t len, size_t vocab)
{
    std::vector<int> prompt;
    prompt.reserve(len);
    for (size_t i = 0; i < len; ++i)
        prompt.push_back(static_cast<int>(rng.uniformInt(
            int64_t{1}, static_cast<int64_t>(vocab) - 1)));
    return prompt;
}

/** Tiny-but-real architecture derived from the trial stream. */
model::ModelConfig
drawModelConfig(util::Rng &rng)
{
    model::ModelConfig cfg;
    cfg.name = "diff-tiny";
    cfg.vocabSize = 24 + rng.uniformInt(uint64_t{73});      // 24..96
    cfg.nHeads = 2 + 2 * rng.uniformInt(uint64_t{2});       // 2 or 4
    cfg.dModel = cfg.nHeads *
                 (4 + 4 * rng.uniformInt(uint64_t{2}));     // dHead 4/8
    cfg.dFf = 32 + 16 * rng.uniformInt(uint64_t{2});        // 32 or 48
    cfg.nLayers = 2 + rng.uniformInt(uint64_t{3});          // 2..4
    cfg.maxSeqLen = 192;
    cfg.seed = rng.next();
    // Tensor-parallel degree: a power of two dividing nHeads (1, 2,
    // or — with 4 heads — 4), so the oracle suite continually fuzzes
    // the sharded forward against the spec/incremental equivalences.
    const uint64_t tp_draw = rng.uniformInt(uint64_t{3}); // 0..2
    cfg.tensorParallel = size_t{1} << tp_draw;
    if (cfg.nHeads % cfg.tensorParallel != 0)
        cfg.tensorParallel = 2;
    return cfg;
}

std::string
joinTokens(const std::vector<int> &tokens)
{
    std::ostringstream oss;
    for (size_t i = 0; i < tokens.size(); ++i)
        oss << (i ? "," : "") << tokens[i];
    return oss.str();
}

/** Locate the node identified by a root-to-node token path. */
core::NodeId
findByPath(const core::TokenTree &tree, const std::vector<int> &path)
{
    core::NodeId u = core::TokenTree::kRoot;
    if (path.empty() || tree.node(u).token != path.front())
        return -1;
    for (size_t i = 1; i < path.size(); ++i) {
        core::NodeId next = -1;
        for (core::NodeId v : tree.node(u).children) {
            if (tree.node(v).token == path[i]) {
                next = v;
                break;
            }
        }
        if (next < 0)
            return -1;
        u = next;
    }
    return u;
}

/** Random speculated tree for one SSM id over a small vocabulary. */
core::TokenTree
drawSsmTree(util::Rng &rng, int root_token, size_t vocab, int ssm_id)
{
    core::TokenTree tree(root_token);
    std::vector<core::NodeId> frontier = {core::TokenTree::kRoot};
    const size_t depth = 1 + rng.uniformInt(uint64_t{3});
    for (size_t step = 0; step < depth; ++step) {
        std::vector<core::NodeId> next;
        for (core::NodeId u : frontier) {
            const size_t k = 1 + rng.uniformInt(uint64_t{3});
            for (size_t j = 0; j < k; ++j) {
                // Small vocab on purpose: repeated samples and
                // cross-tree collisions exercise the fold paths.
                int token = static_cast<int>(
                    rng.uniformInt(static_cast<uint64_t>(vocab)));
                next.push_back(tree.addChild(u, token, ssm_id));
            }
        }
        // Record a distribution at every frontier node so the
        // merge's distribution-union property can be checked.
        for (core::NodeId u : frontier) {
            std::vector<float> dist(vocab);
            float total = 0.0f;
            for (float &v : dist) {
                v = static_cast<float>(rng.uniform()) + 0.01f;
                total += v;
            }
            for (float &v : dist)
                v /= total;
            tree.setSsmDistribution(u, ssm_id, std::move(dist));
        }
        frontier = std::move(next);
    }
    return tree;
}

std::set<std::vector<int>>
pathSet(const core::TokenTree &tree)
{
    std::vector<std::vector<int>> paths = tree.allPaths();
    return std::set<std::vector<int>>(paths.begin(), paths.end());
}

/** Structural invariants every TokenTree must satisfy. */
bool
checkTreeStructure(const core::TokenTree &tree, std::string *why)
{
    for (size_t i = 0; i < tree.size(); ++i) {
        const core::TreeNode &n =
            tree.node(static_cast<core::NodeId>(i));
        if (i == 0) {
            if (n.parent != -1 || n.depth != 0) {
                *why = "root must have parent -1 and depth 0";
                return false;
            }
            continue;
        }
        if (n.parent < 0 || static_cast<size_t>(n.parent) >= i) {
            *why = "node order not topological at node " +
                   std::to_string(i);
            return false;
        }
        const core::TreeNode &p = tree.node(n.parent);
        if (n.depth != p.depth + 1) {
            *why = "depth mismatch at node " + std::to_string(i);
            return false;
        }
        if (n.proposals.empty()) {
            *why = "speculated node " + std::to_string(i) +
                   " has no proposals";
            return false;
        }
    }
    // Children must carry distinct tokens (Def. 3.1: one node per
    // sequence) and be reachable from their parent exactly once.
    for (size_t i = 0; i < tree.size(); ++i) {
        const core::TreeNode &n =
            tree.node(static_cast<core::NodeId>(i));
        std::set<int> tokens;
        for (core::NodeId c : n.children) {
            if (tree.node(c).parent != static_cast<core::NodeId>(i)) {
                *why = "child/parent link mismatch";
                return false;
            }
            if (!tokens.insert(tree.node(c).token).second) {
                *why = "duplicate child token under node " +
                       std::to_string(i);
                return false;
            }
        }
    }
    // Chunk conversion preserves parents and topological order.
    model::DecodeChunk chunk = tree.toChunk(-1);
    for (size_t i = 0; i < tree.size(); ++i) {
        const int32_t expect =
            i == 0 ? -1 : tree.node(static_cast<core::NodeId>(i)).parent;
        if (chunk.parents[i] != expect ||
            chunk.tokens[i] !=
                tree.node(static_cast<core::NodeId>(i)).token) {
            *why = "toChunk() parent/token mismatch at " +
                   std::to_string(i);
            return false;
        }
    }
    return true;
}

} // namespace

TrialOutcome
runGreedyTrial(uint64_t seed, bool verbose)
{
    TrialOutcome out;
    util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x1234567ULL);

    model::ModelConfig mc = drawModelConfig(rng);
    model::Transformer llm = model::makeLlm(mc);

    const size_t ssm_count = 1 + rng.uniformInt(uint64_t{2});
    std::vector<model::Transformer> ssms;
    std::ostringstream ssm_desc;
    for (size_t s = 0; s < ssm_count; ++s) {
        const size_t layers =
            1 + rng.uniformInt(static_cast<uint64_t>(mc.nLayers - 1));
        // ~1/4 of draws run the real-int8 SSM path, so the oracle
        // continuously fuzzes the integer GEMM kernels end to end
        // (greedy verification is lossless for ANY draft model, so
        // the equivalence contract is unchanged).
        if (rng.uniform() < 0.25) {
            ssms.push_back(model::makeInt8Ssm(llm, layers));
            ssm_desc << (s ? "+" : "") << layers << "Li8";
            continue;
        }
        const float noise = rng.uniform() < 0.5 ? 0.0f : 0.1f;
        ssms.push_back(model::makeEarlyExitSsm(llm, layers, noise,
                                               rng.next()));
        ssm_desc << (s ? "+" : "") << layers << "L";
    }

    core::ExpansionConfig expansion;
    const size_t depth = rng.uniformInt(uint64_t{5}); // 0..4
    for (size_t i = 0; i < depth; ++i)
        expansion.widths.push_back(
            1 + rng.uniformInt(i == 0 ? uint64_t{3} : uint64_t{2}));

    core::EngineConfig cfg = core::EngineConfig::greedyDefault();
    cfg.spec.expansion = expansion;
    cfg.maxNewTokens = 6 + rng.uniformInt(uint64_t{15});
    cfg.stopAtEos = rng.uniform() < 0.5;
    cfg.seed = rng.next();
    if (rng.uniform() < 0.35)
        cfg.maxPrefillChunk = 4 + rng.uniformInt(uint64_t{8});
    const bool want_stop = rng.uniform() < 0.4;

    const size_t prompt_len = 3 + rng.uniformInt(uint64_t{30});
    std::vector<int> prompt = drawPrompt(rng, prompt_len,
                                         mc.vocabSize);

    model::SamplingParams greedy;
    greedy.temperature = 0.0f;

    // Derive a stop sequence that actually fires: a window of the
    // unconstrained reference output.
    if (want_stop) {
        util::Rng pre_rng(1);
        core::GenerationResult pre = core::incrementalGenerate(
            llm, prompt, greedy, cfg.maxNewTokens, pre_rng,
            cfg.stopAtEos);
        if (pre.tokens.size() >= 4) {
            const size_t len = 1 + rng.uniformInt(uint64_t{2});
            const size_t start = rng.uniformInt(
                static_cast<uint64_t>(pre.tokens.size() - len));
            cfg.stopSequences.push_back(std::vector<int>(
                pre.tokens.begin() + static_cast<ptrdiff_t>(start),
                pre.tokens.begin() +
                    static_cast<ptrdiff_t>(start + len)));
        }
    }

    {
        std::ostringstream oss;
        oss << "seed=" << seed << " vocab=" << mc.vocabSize
            << " layers=" << mc.nLayers << " dModel=" << mc.dModel
            << " ssms=" << ssm_desc.str()
            << " expansion=" << expansion.toString()
            << " maxNew=" << cfg.maxNewTokens
            << " prefillChunk=" << cfg.maxPrefillChunk
            << " eos=" << (cfg.stopAtEos ? 1 : 0) << " stops="
            << (cfg.stopSequences.empty()
                    ? std::string("-")
                    : joinTokens(cfg.stopSequences.front()));
        out.configLine = oss.str();
    }

    // Oracle: independent incremental greedy decoding.
    util::Rng ref_rng(2);
    core::GenerationResult ref = core::incrementalGenerate(
        llm, prompt, greedy, cfg.maxNewTokens, ref_rng, cfg.stopAtEos,
        cfg.stopSequences);

    std::vector<const model::Transformer *> pool;
    if (depth > 0)
        for (const model::Transformer &ssm : ssms)
            pool.push_back(&ssm);
    core::SpecEngine engine(&llm, pool, cfg);
    core::GenerationResult got = engine.generate(prompt, seed);

    if (verbose) {
        out.configLine += "\n  prompt: " + joinTokens(prompt) +
                          "\n  oracle: " + joinTokens(ref.tokens) +
                          "\n  engine: " + joinTokens(got.tokens);
    }

    if (got.tokens != ref.tokens) {
        size_t diverge = 0;
        while (diverge < got.tokens.size() &&
               diverge < ref.tokens.size() &&
               got.tokens[diverge] == ref.tokens[diverge])
            ++diverge;
        std::ostringstream oss;
        oss << "token mismatch at position " << diverge << ": engine "
            << got.tokens.size() << " tokens ["
            << joinTokens(got.tokens) << "] vs oracle "
            << ref.tokens.size() << " tokens ["
            << joinTokens(ref.tokens) << "]";
        out.ok = false;
        out.detail = oss.str();
        return out;
    }
    if (got.logProbs.size() != ref.logProbs.size()) {
        out.ok = false;
        out.detail = "log-prob count mismatch";
        return out;
    }
    for (size_t i = 0; i < got.logProbs.size(); ++i) {
        if (std::abs(got.logProbs[i] - ref.logProbs[i]) > 1.0e-4f) {
            out.ok = false;
            out.detail = "log-prob mismatch at token " +
                         std::to_string(i);
            return out;
        }
    }
    if (got.stats.totalGenerated() != got.tokens.size()) {
        out.ok = false;
        out.detail = "stats.totalGenerated disagrees with output";
        return out;
    }
    for (const core::StepRecord &s : got.stats.steps) {
        if (s.prefill != (s.verifiedTokens == 0)) {
            out.ok = false;
            out.detail = "prefill flag inconsistent with emission";
            return out;
        }
    }
    return out;
}

TrialOutcome
runTreeFuzzTrial(uint64_t seed)
{
    TrialOutcome out;
    util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x7654321ULL);
    const size_t vocab = 4 + rng.uniformInt(uint64_t{6}); // 4..9
    const int root = static_cast<int>(
        rng.uniformInt(static_cast<uint64_t>(vocab)));
    const size_t ssm_count = 1 + rng.uniformInt(uint64_t{3});
    out.configLine = "seed=" + std::to_string(seed) + " vocab=" +
                     std::to_string(vocab) + " ssms=" +
                     std::to_string(ssm_count);

    std::vector<core::TokenTree> sources;
    for (size_t s = 0; s < ssm_count; ++s)
        sources.push_back(drawSsmTree(rng, root, vocab,
                                      static_cast<int>(s)));

    core::TokenTree merged = sources[0];
    for (size_t s = 1; s < ssm_count; ++s)
        merged.merge(sources[s]);

    std::string why;
    for (const core::TokenTree &t : sources) {
        if (!checkTreeStructure(t, &why)) {
            out.ok = false;
            out.detail = "source tree: " + why;
            return out;
        }
    }
    if (!checkTreeStructure(merged, &why)) {
        out.ok = false;
        out.detail = "merged tree: " + why;
        return out;
    }

    // Def. 3.2: the merged path set is the union of the sources'.
    std::set<std::vector<int>> expect;
    for (const core::TokenTree &t : sources) {
        std::set<std::vector<int>> p = pathSet(t);
        expect.insert(p.begin(), p.end());
    }
    if (pathSet(merged) != expect) {
        out.ok = false;
        out.detail = "merged path set is not the union of sources";
        return out;
    }

    // Proposal-multiset union and distribution union: every source
    // node must be found in the merged tree carrying exactly that
    // source's proposal multiplicity (sources have disjoint ssm
    // ids, so per-SSM max-union preserves each count verbatim) and
    // its recorded distributions.
    for (size_t s = 0; s < ssm_count; ++s) {
        const core::TokenTree &t = sources[s];
        for (size_t i = 1; i < t.size(); ++i) {
            const core::NodeId id = static_cast<core::NodeId>(i);
            core::NodeId here = findByPath(merged, t.pathTokens(id));
            if (here < 0) {
                out.ok = false;
                out.detail = "source path missing after merge";
                return out;
            }
            size_t want = 0;
            for (int p : t.node(id).proposals)
                if (p == static_cast<int>(s))
                    ++want;
            size_t copies = 0;
            for (int p : merged.node(here).proposals)
                if (p == static_cast<int>(s))
                    ++copies;
            if (copies != want) {
                out.ok = false;
                out.detail = "ssm " + std::to_string(s) +
                             " multiplicity " + std::to_string(want) +
                             " became " + std::to_string(copies) +
                             " after merge";
                return out;
            }
        }
        for (size_t i = 0; i < t.size(); ++i) {
            const core::NodeId id = static_cast<core::NodeId>(i);
            const std::vector<float> *dist =
                t.ssmDistribution(id, static_cast<int>(s));
            if (dist == nullptr)
                continue;
            core::NodeId here = findByPath(merged, t.pathTokens(id));
            const std::vector<float> *got =
                here < 0 ? nullptr
                         : merged.ssmDistribution(here,
                                                  static_cast<int>(s));
            if (got == nullptr || *got != *dist) {
                out.ok = false;
                out.detail = "SSM distribution lost in merge";
                return out;
            }
        }
    }

    // Merge idempotence: self-merge changes nothing (node count,
    // paths, and proposal sets — the per-SSM dedup guarantee).
    core::TokenTree again = merged;
    again.merge(merged);
    if (again.size() != merged.size() ||
        pathSet(again) != pathSet(merged)) {
        out.ok = false;
        out.detail = "self-merge is not idempotent (structure)";
        return out;
    }
    for (size_t i = 0; i < merged.size(); ++i) {
        const core::NodeId id = static_cast<core::NodeId>(i);
        if (again.node(id).proposals != merged.node(id).proposals) {
            out.ok = false;
            out.detail = "self-merge duplicated proposals at node " +
                         std::to_string(i);
            return out;
        }
    }
    return out;
}

TrialOutcome
runKvRoundTripTrial(uint64_t seed)
{
    TrialOutcome out;
    util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xabcdefULL);

    model::ModelConfig mc = drawModelConfig(rng);
    model::Transformer llm = model::makeLlm(mc);
    const size_t vocab = mc.vocabSize;

    std::vector<int> seq =
        drawPrompt(rng, 3 + rng.uniformInt(uint64_t{10}), vocab);
    core::TokenTree tree =
        drawSsmTree(rng, seq.back(), vocab, /*ssm_id=*/0);

    out.configLine = "seed=" + std::to_string(seed) + " vocab=" +
                     std::to_string(vocab) + " seq=" +
                     std::to_string(seq.size()) + " tree=" +
                     std::to_string(tree.speculatedCount());

    model::KvCache cache = llm.makeCache();
    llm.forward(model::DecodeChunk::sequence(seq), cache);
    const size_t base = cache.length();

    // Decode the speculated nodes as one tree chunk; the root is the
    // already-cached last verified token, so node i maps to chunk
    // entry i - 1 and root children extend the cached prefix.
    model::DecodeChunk chunk;
    for (size_t n = 1; n < tree.size(); ++n) {
        const core::TreeNode &node =
            tree.node(static_cast<core::NodeId>(n));
        chunk.tokens.push_back(node.token);
        chunk.parents.push_back(node.parent - 1);
    }
    llm.forward(chunk, cache);

    // Accept a random root-to-node path (possibly empty).
    const core::NodeId accepted = static_cast<core::NodeId>(
        rng.uniformInt(static_cast<uint64_t>(tree.size())));
    std::vector<core::NodeId> path;
    for (core::NodeId n = accepted; n > 0; n = tree.node(n).parent)
        path.push_back(n);
    std::reverse(path.begin(), path.end());

    std::vector<size_t> keep;
    for (size_t s = 0; s < base; ++s)
        keep.push_back(s);
    for (core::NodeId n : path)
        keep.push_back(base + static_cast<size_t>(n) - 1);
    cache.keepRows(keep);

    std::vector<int> accepted_seq = seq;
    for (core::NodeId n : path)
        accepted_seq.push_back(tree.node(n).token);
    model::KvCache fresh = llm.makeCache();
    llm.forward(model::DecodeChunk::sequence(accepted_seq), fresh);

    if (cache.length() != fresh.length()) {
        out.ok = false;
        out.detail = "compacted length != fresh prefill length";
        return out;
    }
    const size_t row_bytes = cache.kvDim() * sizeof(float);
    for (size_t layer = 0; layer < cache.layers(); ++layer) {
        for (size_t slot = 0; slot < cache.length(); ++slot) {
            if (std::memcmp(cache.keyRow(layer, slot),
                            fresh.keyRow(layer, slot),
                            row_bytes) != 0 ||
                std::memcmp(cache.valueRow(layer, slot),
                            fresh.valueRow(layer, slot),
                            row_bytes) != 0) {
                out.ok = false;
                out.detail = "KV rows differ at layer " +
                             std::to_string(layer) + " slot " +
                             std::to_string(slot);
                return out;
            }
        }
    }

    // Future decoding must agree bitwise as well.
    const int probe = static_cast<int>(
        rng.uniformInt(int64_t{1}, static_cast<int64_t>(vocab) - 1));
    tensor::Tensor a =
        llm.forward(model::DecodeChunk::single(probe), cache);
    tensor::Tensor b =
        llm.forward(model::DecodeChunk::single(probe), fresh);
    for (size_t i = 0; i < a.size(); ++i) {
        if (a.data()[i] != b.data()[i]) {
            out.ok = false;
            out.detail = "post-compaction logits diverge";
            return out;
        }
    }
    return out;
}

TrialOutcome
runRecoveryTrial(uint64_t seed, bool verbose)
{
    TrialOutcome out;
    util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xc4a54ULL);

    // Tiny-but-real serving stack: model pair, engine, scheduler.
    model::ModelConfig mc;
    mc.name = "recovery-tiny";
    mc.vocabSize = 24 + rng.uniformInt(uint64_t{41}); // 24..64
    mc.nHeads = 2;
    mc.dModel = 8;
    mc.dFf = 32;
    mc.nLayers = 2 + rng.uniformInt(uint64_t{2}); // 2..3
    mc.maxSeqLen = 96;
    mc.seed = rng.next();
    model::Transformer llm = model::makeLlm(mc);

    const size_t ssm_count = 1 + rng.uniformInt(uint64_t{2});
    std::vector<model::Transformer> ssms;
    for (size_t s = 0; s < ssm_count; ++s)
        ssms.push_back(model::makeEarlyExitSsm(llm, 1, 0.0f,
                                               rng.next()));

    // Half the trials use stochastic (MSS) decoding so the journaled
    // RNG cursor carries real weight: replay must land every
    // residual-sampling draw bit-exactly.
    const bool stochastic = rng.uniform() < 0.5;
    core::EngineConfig ecfg =
        stochastic ? core::EngineConfig::stochasticDefault(
                         0.7f + 0.3f * static_cast<float>(
                                           rng.uniform()))
                   : core::EngineConfig::greedyDefault();
    ecfg.spec.expansion = core::ExpansionConfig::uniform(
        2, 1 + rng.uniformInt(uint64_t{2})); // <2> or <2,2>
    ecfg.maxNewTokens = 6 + rng.uniformInt(uint64_t{7}); // 6..12
    ecfg.stopAtEos = true;
    ecfg.seed = rng.next();
    if (rng.uniform() < 0.3)
        ecfg.maxPrefillChunk = 3 + rng.uniformInt(uint64_t{5});

    std::vector<const model::Transformer *> pool;
    for (const model::Transformer &ssm : ssms)
        pool.push_back(&ssm);
    core::SpecEngine engine(&llm, pool, ecfg);

    // Deterministic wall clock for the QoS trials: frozen between
    // explicit set() calls, keyed to the driver iteration below, so
    // baseline, counting run, and crash run read identical
    // timestamps at the same iteration regardless of how many
    // requests are in flight (nowNanos_ is sampled once per
    // iteration). kTick is large enough that per-iteration deadlines
    // are expressible; kEpoch keeps 0 meaning "no deadline".
    constexpr uint64_t kTick = 1000;
    constexpr uint64_t kEpoch = 1000000;
    // ManualClock refuses to move backwards, and the trial drives
    // three full runs (baseline, consultation count, crash) through
    // the same schedule — so each run gets a fresh clock instance,
    // rebound into the serving config just before its manager is
    // built.
    std::unique_ptr<obs::ManualClock> clock;
    std::unique_ptr<obs::ObsContext> obs_ctx;

    // Arrival script: prompts with staggered driver-side arrivals,
    // QoS classes, and (sometimes) absolute wall-clock deadlines.
    struct Arrival
    {
        std::vector<int> prompt;
        size_t maxNew;
        size_t driverIter;
        runtime::Priority priority = runtime::Priority::Standard;
        uint64_t deadlineNanos = 0;
    };
    std::vector<Arrival> script;
    const size_t n_req = 2 + rng.uniformInt(uint64_t{3}); // 2..4
    size_t worst_tokens = 0;
    size_t wall_deadlines = 0;
    for (size_t i = 0; i < n_req; ++i) {
        Arrival a;
        a.prompt = drawPrompt(rng, 3 + rng.uniformInt(uint64_t{13}),
                              mc.vocabSize);
        if (i > 0 && rng.uniform() < 0.5) {
            // Multi-tenant shape: this prompt rides an earlier
            // prompt's prefix, so prefix-sharing trials exercise
            // interning, COW, and deterministic eviction under
            // crashes torn anywhere in the admission sequence.
            const std::vector<int> &prev =
                script[rng.uniformInt(static_cast<uint64_t>(i))]
                    .prompt;
            const size_t keep =
                1 + rng.uniformInt(
                        static_cast<uint64_t>(prev.size()));
            std::vector<int> mixed(prev.begin(),
                                   prev.begin() +
                                       static_cast<long>(keep));
            const std::vector<int> tail = drawPrompt(
                rng, 2 + rng.uniformInt(uint64_t{7}),
                mc.vocabSize);
            mixed.insert(mixed.end(), tail.begin(), tail.end());
            a.prompt = std::move(mixed);
        }
        a.maxNew = rng.uniform() < 0.5
                       ? 0
                       : 4 + rng.uniformInt(uint64_t{7});
        a.driverIter = rng.uniformInt(uint64_t{7});
        a.priority = static_cast<runtime::Priority>(
            rng.uniformInt(uint64_t{runtime::kPriorityCount}));
        if (rng.uniform() < 0.4) {
            // Absolute deadline on the manual clock. Mostly
            // generous (the request finishes), sometimes tight
            // (it expires mid-decode or while queued) — both
            // outcomes are journaled finish events and must
            // replay identically through any crash.
            const uint64_t horizon =
                rng.uniform() < 0.5
                    ? 3 + rng.uniformInt(uint64_t{10}) // tight
                    : 200;                             // generous
            a.deadlineNanos =
                kEpoch + (a.driverIter + horizon) * kTick;
            ++wall_deadlines;
        }
        const size_t budget =
            a.maxNew > 0 ? a.maxNew : ecfg.maxNewTokens;
        worst_tokens =
            std::max(worst_tokens, a.prompt.size() + budget +
                                       engine.treeBudget() + 2);
        script.push_back(std::move(a));
    }
    std::sort(script.begin(), script.end(),
              [](const Arrival &a, const Arrival &b) {
                  return a.driverIter < b.driverIter;
              });

    runtime::ServingConfig scfg;
    scfg.maxBatchSize = 2 + rng.uniformInt(uint64_t{3}); // 2..4
    scfg.kvBlockTokens = 8;
    auto resetClock = [&]() {
        obs_ctx.reset();
        clock = std::make_unique<obs::ManualClock>(kEpoch,
                                                   /*auto_step=*/0);
        obs_ctx = std::make_unique<obs::ObsContext>(
            clock.get(), /*tracing_enabled=*/false);
        scfg.obs = obs_ctx.get();
    };
    bool buckets = false;
    if (rng.uniform() < 0.5) {
        // Per-class token buckets, sized so every scripted request
        // is admitted (a rejected submit would fork the workload):
        // the interesting part is that accepted submits consume
        // bucket tokens through the journal-replay path, so crash
        // recovery must re-consume identically.
        buckets = true;
        for (size_t c = 0; c < runtime::kPriorityCount; ++c) {
            scfg.classBucketCapacity[c] =
                n_req + rng.uniformInt(uint64_t{4});
            scfg.classRefillEveryIterations[c] =
                1 + rng.uniformInt(uint64_t{3});
        }
    }
    if (rng.uniform() < 0.8) {
        // Pool between 1x and 3x one worst-case request: tight
        // enough that on-demand paging preempts under load, while
        // FCFS guarantees forward progress. No deadlines, no retry
        // or queue bounds: aborts depend on the iteration clock,
        // which recovery may legitimately shift by one tick.
        const size_t per_req =
            (worst_tokens + scfg.kvBlockTokens - 1) /
            scfg.kvBlockTokens;
        scfg.kvPoolBlocks =
            per_req * (1 + rng.uniformInt(uint64_t{3}));
        scfg.kvPolicy =
            rng.uniform() < 0.6
                ? runtime::KvReservationPolicy::OnDemand
                : runtime::KvReservationPolicy::WorstCase;
        scfg.kvPrefixSharing = rng.uniform() < 0.6;
    }

    const size_t snap_every = 1 + rng.uniformInt(uint64_t{8});
    const size_t crash_budget = rng.uniform() < 0.3 ? 2 : 1;
    const bool kv_faults = rng.uniform() < 0.4;
    const double kv_fault_prob = 0.02 + 0.05 * rng.uniform();

    {
        std::ostringstream oss;
        oss << "seed=" << seed << " vocab=" << mc.vocabSize
            << " layers=" << mc.nLayers
            << (stochastic ? " mss" : " greedy")
            << " reqs=" << n_req << " batch=" << scfg.maxBatchSize
            << " pool=" << scfg.kvPoolBlocks
            << (scfg.kvPolicy ==
                        runtime::KvReservationPolicy::OnDemand
                    ? "/ondemand"
                    : "/worstcase")
            << " snapEvery=" << snap_every
            << " crashes<=" << crash_budget
            << " kvFaults=" << (kv_faults ? 1 : 0)
            << " sharing=" << (scfg.kvPrefixSharing ? 1 : 0)
            << " buckets=" << (buckets ? 1 : 0)
            << " wallDeadlines=" << wall_deadlines;
        out.configLine = oss.str();
    }

    // --- Reference: the same workload, never interrupted. ---------
    // The baseline runs inside the *same* fault environment as the
    // crash run (same injector seed, KvAlloc armed, Crash not):
    // KvAlloc decisions are keyed by (request, iteration), so both
    // runs see identical allocation pressure and any divergence is
    // attributable to recovery alone — even when wall-clock
    // deadlines make fault-induced delays observable in the output.
    std::vector<runtime::RequestResult> baseline;
    {
        util::FaultInjector base_injector(seed ^ 0xc7a5d1ULL);
        util::FaultScope base_scope(&base_injector);
        if (kv_faults)
            base_injector.setProbability(util::FaultPoint::KvAlloc,
                                         kv_fault_prob);
        resetClock();
        runtime::RequestManager mgr(&engine, scfg);
        size_t it = 0, next = 0, guard = 0;
        while (next < script.size() || mgr.busy()) {
            clock->set(kEpoch + it * kTick);
            while (next < script.size() &&
                   script[next].driverIter <= it) {
                runtime::SubmitResult sr = mgr.submit(
                    script[next].prompt, script[next].maxNew, 0,
                    script[next].priority,
                    script[next].deadlineNanos);
                SPECINFER_CHECK(sr.accepted(),
                                "recovery trial baseline reject");
                ++next;
            }
            mgr.runIteration();
            ++it;
            if (++guard > 20000) {
                out.ok = false;
                out.detail = "baseline failed to drain";
                return out;
            }
        }
        // At drain, zero-ref shared blocks legitimately stay
        // resident (they are the prefix cache); anything beyond
        // that is a leak.
        if (mgr.kvPool() &&
            (mgr.kvPool()->usedBlocks() !=
                 mgr.kvPool()->residentSharedBlocks() ||
             mgr.kvPool()->stats().redundantReleases != 0)) {
            out.ok = false;
            out.detail = "baseline leaked KV blocks";
            return out;
        }
        baseline = mgr.takeFinished();
    }

    // --- Count crash-point consultations for this workload. -------
    // The crash must land uniformly *inside* the run; arming at a
    // fixed-range occurrence would overshoot short workloads and
    // never crash them. A dry run with the identical injector seed
    // (crash unarmed — armed points and zero-probability points
    // consume no randomness, so the KvAlloc schedule replays
    // bit-exactly in the real run) counts the consultations.
    uint64_t crash_consultations = 0;
    {
        util::FaultInjector counter(seed ^ 0xc7a5d1ULL);
        util::FaultScope count_scope(&counter);
        if (kv_faults)
            counter.setProbability(util::FaultPoint::KvAlloc,
                                   kv_fault_prob);
        std::stringstream count_buf;
        runtime::JournalWriter count_writer(count_buf);
        resetClock();
        runtime::RequestManager count_mgr(&engine, scfg);
        count_mgr.attachJournal(&count_writer);
        size_t cit = 0, cnext = 0, cguard = 0;
        while (cnext < script.size() || count_mgr.busy()) {
            clock->set(kEpoch + cit * kTick);
            while (cnext < script.size() &&
                   script[cnext].driverIter <= cit) {
                count_mgr.submit(script[cnext].prompt,
                                 script[cnext].maxNew, 0,
                                 script[cnext].priority,
                                 script[cnext].deadlineNanos);
                ++cnext;
            }
            count_mgr.runIteration();
            ++cit;
            if (++cguard > 20000) {
                out.ok = false;
                out.detail = "counting run failed to drain";
                return out;
            }
        }
        crash_consultations =
            counter.occurrences(util::FaultPoint::Crash);
    }
    const uint64_t first_crash =
        1 + rng.uniformInt(
                std::max<uint64_t>(crash_consultations, 1));
    out.configLine +=
        " crashAt=" + std::to_string(first_crash) + "/" +
        std::to_string(crash_consultations);

    // --- Crash run: journal + snapshots + injected crashes. -------
    util::FaultInjector injector(seed ^ 0xc7a5d1ULL);
    util::FaultScope scope(&injector);
    if (kv_faults)
        injector.setProbability(util::FaultPoint::KvAlloc,
                                kv_fault_prob);
    injector.armAt(util::FaultPoint::Crash, first_crash);

    auto journal_buf = std::make_unique<std::stringstream>();
    auto writer = std::make_unique<runtime::JournalWriter>(
        *journal_buf);
    resetClock();
    auto mgr = std::make_unique<runtime::RequestManager>(&engine,
                                                         scfg);
    mgr->attachJournal(writer.get());
    std::string snap_bytes; // empty until the first snapshot
    size_t crashes = 0;

    size_t it = 0, next = 0, guard = 0;
    while (next < script.size() || mgr->busy()) {
        // Same clock schedule as the baseline: a crash retries the
        // driver iteration without advancing `it`, so the recovered
        // manager's first live iteration reads the very timestamp
        // the crashed one would have.
        clock->set(kEpoch + it * kTick);
        while (next < script.size() &&
               script[next].driverIter <= it) {
            runtime::SubmitResult sr = mgr->submit(
                script[next].prompt, script[next].maxNew, 0,
                script[next].priority,
                script[next].deadlineNanos);
            SPECINFER_CHECK(sr.accepted(),
                            "recovery trial crash-run reject");
            ++next;
        }
        mgr->runIteration();
        if (mgr->crashed()) {
            ++crashes;
            // Process death: everything in memory is gone. Rebuild
            // purely from the persisted snapshot + journal bytes.
            auto recovered =
                std::make_unique<runtime::RequestManager>(&engine,
                                                          scfg);
            auto new_buf = std::make_unique<std::stringstream>();
            auto new_writer =
                std::make_unique<runtime::JournalWriter>(*new_buf);
            recovered->attachJournal(new_writer.get());
            std::stringstream snap_in(snap_bytes);
            std::stringstream journal_in(journal_buf->str());
            recovered->recover(
                snap_bytes.empty() ? nullptr : &snap_in,
                &journal_in);
            mgr = std::move(recovered);
            journal_buf = std::move(new_buf);
            writer = std::move(new_writer);
            // Start a fresh journal epoch: snapshot now so a second
            // crash recovers from this point.
            std::stringstream snap_out;
            mgr->writeSnapshot(snap_out);
            snap_bytes = snap_out.str();
            if (crashes < crash_budget)
                injector.armAt(
                    util::FaultPoint::Crash,
                    injector.occurrences(util::FaultPoint::Crash) +
                        1 + rng.uniformInt(uint64_t{60}));
            // Retry the same driver iteration (arrivals already
            // submitted this tick were journaled and recovered).
            continue;
        }
        ++it;
        if (it % snap_every == 0) {
            std::stringstream snap_out;
            mgr->writeSnapshot(snap_out);
            snap_bytes = snap_out.str();
        }
        if (++guard > 20000) {
            out.ok = false;
            out.detail = "crash run failed to drain (crashes=" +
                         std::to_string(crashes) + ")";
            return out;
        }
    }
    out.configLine += " firedCrashes=" + std::to_string(crashes);

    if (mgr->kvPool() &&
        (mgr->kvPool()->usedBlocks() !=
             mgr->kvPool()->residentSharedBlocks() ||
         mgr->kvPool()->stats().redundantReleases != 0)) {
        out.ok = false;
        out.detail = "crash run leaked KV blocks (used=" +
                     std::to_string(mgr->kvPool()->usedBlocks()) +
                     " redundant=" +
                     std::to_string(mgr->kvPool()
                                        ->stats()
                                        .redundantReleases) +
                     ")";
        return out;
    }
    std::vector<runtime::RequestResult> recovered_results =
        mgr->takeFinished();

    // --- Equivalence: token-for-token identical outputs. ----------
    if (baseline.size() != script.size() ||
        recovered_results.size() != script.size()) {
        out.ok = false;
        out.detail = "request conservation violated: baseline " +
                     std::to_string(baseline.size()) +
                     ", recovered " +
                     std::to_string(recovered_results.size()) +
                     ", submitted " + std::to_string(script.size());
        return out;
    }
    std::map<uint64_t, const runtime::RequestResult *> by_id;
    for (const runtime::RequestResult &res : baseline)
        by_id[res.id] = &res;
    for (const runtime::RequestResult &res : recovered_results) {
        auto ref = by_id.find(res.id);
        if (ref == by_id.end()) {
            out.ok = false;
            out.detail = "request " + std::to_string(res.id) +
                         " exists only after recovery";
            return out;
        }
        if (res.tokens != ref->second->tokens) {
            std::ostringstream oss;
            oss << "request " << res.id
                << " output diverged after recovery: baseline ["
                << joinTokens(ref->second->tokens)
                << "] vs recovered [" << joinTokens(res.tokens)
                << "]";
            out.ok = false;
            out.detail = oss.str();
            return out;
        }
        if (res.stopReason != ref->second->stopReason) {
            out.ok = false;
            out.detail = "request " + std::to_string(res.id) +
                         " stop reason diverged after recovery";
            return out;
        }
        if (verbose)
            out.configLine += "\n  id=" + std::to_string(res.id) +
                              ": " + joinTokens(res.tokens);
    }
    return out;
}

MssCheckResult
runMssDistributionCheck(const MssCheckConfig &cfg)
{
    MssCheckResult res;
    util::Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL + 0x5151ULL);

    model::ModelConfig mc;
    mc.name = "mss-tiny";
    mc.vocabSize = 32;
    mc.dModel = 16;
    mc.nHeads = 2;
    mc.dFf = 32;
    mc.nLayers = 3;
    mc.maxSeqLen = 96;
    mc.seed = rng.next();
    model::Transformer llm = model::makeLlm(mc);

    std::vector<model::Transformer> ssms;
    for (size_t s = 0; s < cfg.ssmCount; ++s)
        ssms.push_back(model::makeEarlyExitSsm(
            llm, 1 + s % 2, /*head_noise_std=*/0.1f, rng.next()));

    core::EngineConfig engine_cfg =
        core::EngineConfig::stochasticDefault(cfg.temperature);
    engine_cfg.spec.expansion = core::ExpansionConfig::uniform(2, 2);
    engine_cfg.maxNewTokens = 1;
    engine_cfg.stopAtEos = false;
    engine_cfg.seed = rng.next();

    std::vector<int> prompt = drawPrompt(rng, 6, mc.vocabSize);

    // Exact decoding distribution at the prefix.
    std::vector<double> exact;
    {
        model::KvCache probe = llm.makeCache();
        tensor::Tensor logits = llm.forward(
            model::DecodeChunk::sequence(prompt), probe);
        std::vector<float> p = model::logitsToProbs(
            logits.row(prompt.size() - 1), mc.vocabSize,
            engine_cfg.llmSampling);
        exact.assign(p.begin(), p.end());
    }

    std::vector<const model::Transformer *> pool;
    for (const model::Transformer &ssm : ssms)
        pool.push_back(&ssm);
    core::SpecEngine engine(&llm, pool, engine_cfg);

    std::vector<size_t> spec_counts(mc.vocabSize, 0);
    std::vector<size_t> incr_counts(mc.vocabSize, 0);
    for (size_t s = 0; s < cfg.samples; ++s) {
        core::GenerationResult got =
            engine.generate(prompt, s + 1, 1);
        SPECINFER_CHECK(got.tokens.size() == 1,
                        "expected exactly one generated token");
        ++spec_counts[static_cast<size_t>(got.tokens[0])];

        util::Rng incr_rng(cfg.seed ^ (0x51ecULL + s * 2654435761ULL));
        core::GenerationResult ref = core::incrementalGenerate(
            llm, prompt, engine_cfg.llmSampling, 1, incr_rng, false);
        ++incr_counts[static_cast<size_t>(ref.tokens[0])];
    }

    ChiSquare fit = chiSquareGoodnessOfFit(spec_counts, exact);
    res.chiSquare = fit.stat;
    res.df = fit.df;
    res.critical = chiSquareCritical(fit.df, cfg.alpha);

    ChiSquare homog = chiSquareTwoSample(spec_counts, incr_counts);
    res.chiSquareTwoSample = homog.stat;
    res.dfTwoSample = homog.df;
    res.criticalTwoSample = chiSquareCritical(homog.df, cfg.alpha);

    std::vector<double> emp(mc.vocabSize, 0.0);
    for (size_t i = 0; i < spec_counts.size(); ++i)
        emp[i] = static_cast<double>(spec_counts[i]) /
                 static_cast<double>(cfg.samples);
    res.tvd = totalVariation(emp, exact);

    res.ok = res.chiSquare <= res.critical &&
             res.chiSquareTwoSample <= res.criticalTwoSample;
    if (!res.ok) {
        std::ostringstream oss;
        oss << "MSS distribution skew: chi2(spec vs exact)="
            << res.chiSquare << " crit=" << res.critical << " df="
            << res.df << "; chi2(spec vs incremental)="
            << res.chiSquareTwoSample << " crit="
            << res.criticalTwoSample << " df=" << res.dfTwoSample
            << "; tvd=" << res.tvd;
        res.detail = oss.str();
    }
    return res;
}

} // namespace verify
} // namespace specinfer
