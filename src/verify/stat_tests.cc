#include "verify/stat_tests.h"

#include <cmath>

#include "util/logging.h"

namespace specinfer {
namespace verify {

double
totalVariation(const std::vector<double> &a,
               const std::vector<double> &b)
{
    SPECINFER_CHECK(a.size() == b.size(),
                    "distribution size mismatch");
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        acc += std::abs(a[i] - b[i]);
    return 0.5 * acc;
}

double
normalQuantile(double p)
{
    SPECINFER_CHECK(p > 0.0 && p < 1.0,
                    "quantile probability must be in (0, 1)");
    // Acklam's rational approximation (|error| < 1.15e-9).
    static const double a[] = {-3.969683028665376e+01,
                               2.209460984245205e+02,
                               -2.759285104469687e+02,
                               1.383577518672690e+02,
                               -3.066479806614716e+01,
                               2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01,
                               1.615858368580409e+02,
                               -1.556989798598866e+02,
                               6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03,
                               -3.223964580411365e-01,
                               -2.400758277161838e+00,
                               -2.549732539343734e+00,
                               4.374664141464968e+00,
                               2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03,
                               3.224671290700398e-01,
                               2.445134137142996e+00,
                               3.754408661907416e+00};
    const double p_low = 0.02425;
    if (p < p_low) {
        double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                 c[4]) * q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p <= 1.0 - p_low) {
        double q = p - 0.5;
        double r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r +
                 a[4]) * r + a[5]) * q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r +
                 b[4]) * r + 1.0);
    }
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
              c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double
chiSquareCritical(size_t df, double alpha)
{
    SPECINFER_CHECK(df > 0, "chi-square needs df > 0");
    const double z = normalQuantile(1.0 - alpha);
    const double n = static_cast<double>(df);
    // Wilson-Hilferty: (chi2/df)^(1/3) ~ N(1 - 2/(9df), 2/(9df)).
    const double h = 2.0 / (9.0 * n);
    const double cube = 1.0 - h + z * std::sqrt(h);
    return n * cube * cube * cube;
}

ChiSquare
chiSquareGoodnessOfFit(const std::vector<size_t> &counts,
                       const std::vector<double> &probs,
                       double min_expected)
{
    SPECINFER_CHECK(counts.size() == probs.size(),
                    "counts/probs size mismatch");
    double trials = 0.0;
    for (size_t c : counts)
        trials += static_cast<double>(c);
    SPECINFER_CHECK(trials > 0.0, "no observations");

    ChiSquare result;
    double pool_obs = 0.0;
    double pool_exp = 0.0;
    size_t bins = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        const double expect = probs[i] * trials;
        const double obs = static_cast<double>(counts[i]);
        if (expect < min_expected) {
            pool_obs += obs;
            pool_exp += expect;
            continue;
        }
        const double diff = obs - expect;
        result.stat += diff * diff / expect;
        ++bins;
    }
    if (pool_exp >= min_expected) {
        const double diff = pool_obs - pool_exp;
        result.stat += diff * diff / pool_exp;
        ++bins;
    } else if (pool_obs > 0.0 && pool_exp <= 0.0) {
        // Observed mass where the reference assigns none: certain
        // mismatch regardless of significance level.
        result.stat += 1.0e18;
    } else if (pool_exp > 0.0) {
        const double diff = pool_obs - pool_exp;
        result.stat += diff * diff / pool_exp;
        ++bins;
    }
    result.df = bins > 1 ? bins - 1 : 1;
    return result;
}

ChiSquare
chiSquareTwoSample(const std::vector<size_t> &a,
                   const std::vector<size_t> &b, double min_expected)
{
    SPECINFER_CHECK(a.size() == b.size(), "bin count mismatch");
    double na = 0.0;
    double nb = 0.0;
    for (size_t c : a)
        na += static_cast<double>(c);
    for (size_t c : b)
        nb += static_cast<double>(c);
    SPECINFER_CHECK(na > 0.0 && nb > 0.0, "no observations");
    const double total = na + nb;

    ChiSquare result;
    double pool_a = 0.0;
    double pool_b = 0.0;
    size_t bins = 0;
    auto fold = [&](double obs_a, double obs_b) {
        const double row = obs_a + obs_b;
        if (row <= 0.0)
            return;
        const double ea = row * na / total;
        const double eb = row * nb / total;
        result.stat += (obs_a - ea) * (obs_a - ea) / ea +
                       (obs_b - eb) * (obs_b - eb) / eb;
        ++bins;
    };
    for (size_t i = 0; i < a.size(); ++i) {
        const double obs_a = static_cast<double>(a[i]);
        const double obs_b = static_cast<double>(b[i]);
        if (obs_a + obs_b < min_expected) {
            pool_a += obs_a;
            pool_b += obs_b;
            continue;
        }
        fold(obs_a, obs_b);
    }
    fold(pool_a, pool_b);
    result.df = bins > 1 ? bins - 1 : 1;
    return result;
}

} // namespace verify
} // namespace specinfer
