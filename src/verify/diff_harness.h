/**
 * @file
 * Differential correctness harness: the spec-vs-incremental oracle.
 *
 * SpecInfer's central guarantee (paper §4.3) is that tree-based
 * speculative inference is *exactly* equivalent to incremental
 * decoding — token-for-token under greedy verification, and
 * distribution-identical under multi-step speculative sampling
 * (Theorem 4.2). This library turns that claim into an executable
 * oracle over randomized configurations:
 *
 *  - greedy trials: a random tiny transformer, SSM pool, expansion
 *    config <k_1..k_m>, prompt, stop sequences and prefill chunking
 *    are derived from one seed; SpecEngine::generate must match
 *    incrementalGenerate token-for-token (log-probs close, stats
 *    consistent);
 *  - MSS distribution checks: with a fixed prefix, the empirical
 *    next-token distribution over thousands of seeded generations
 *    must pass a chi-square test against the exact LLM decoding
 *    distribution and a two-sample test against the incremental
 *    path;
 *  - token-tree fuzzing: merge union and idempotence (Def. 3.2),
 *    proposal-multiset preservation, topological node/chunk
 *    ordering;
 *  - KV round trips: keepRows() after verification leaves the cache
 *    byte-identical to a fresh prefill of the accepted prefix.
 *
 * Every trial is a pure function of its 64-bit seed, so any failure
 * reported by tools/diffcheck prints a one-line repro that replays
 * the exact case (`diffcheck --replay <seed> --kind <kind>`).
 */

#ifndef SPECINFER_VERIFY_DIFF_HARNESS_H
#define SPECINFER_VERIFY_DIFF_HARNESS_H

#include <cstdint>
#include <string>
#include <vector>

namespace specinfer {
namespace verify {

/** Outcome of one seeded trial. */
struct TrialOutcome
{
    bool ok = true;

    /** Failure description; empty when ok. */
    std::string detail;

    /** One-line summary of the derived configuration. */
    std::string configLine;
};

/**
 * Greedy differential trial: assert token-exact equality between
 * SpecEngine::generate (greedy verification) and incrementalGenerate
 * on a configuration derived entirely from `seed`.
 *
 * @param verbose When set, configLine additionally carries the
 *        prompt and both token streams (for --replay).
 */
TrialOutcome runGreedyTrial(uint64_t seed, bool verbose = false);

/**
 * TokenTree invariant fuzz: random per-SSM trees are merged and the
 * result checked for path-set union, proposal-multiset preservation
 * (per-SSM max-multiplicity union), SSM-distribution union, merge
 * idempotence, topological order, and chunk-conversion parent
 * consistency.
 */
TrialOutcome runTreeFuzzTrial(uint64_t seed);

/**
 * KV-compaction round trip: decode a random token tree, keepRows()
 * a random accepted path, and require the compacted cache to be
 * byte-identical to a fresh prefill of the accepted sequence (and
 * future decoding to agree bitwise).
 */
TrialOutcome runKvRoundTripTrial(uint64_t seed);

/**
 * Crash/recovery equivalence trial: run a seeded serving workload
 * (continuous batching, optional KV pool pressure and injected
 * allocation faults, greedy or stochastic engine) twice — once
 * uninterrupted, once with write-ahead journaling, periodic
 * snapshots, and a process crash injected at a random point inside
 * runIteration() (including mid-append, leaving a torn journal
 * record). The crashed manager is discarded and rebuilt purely from
 * the persisted snapshot + journal bytes, then driven to
 * completion; some trials crash and recover twice.
 *
 * Passes when every request's final output is token-for-token
 * identical between the two runs, stop reasons agree, no request is
 * lost or duplicated, and the KV pool ends empty with zero
 * redundant releases.
 */
TrialOutcome runRecoveryTrial(uint64_t seed, bool verbose = false);

/** Configuration of the MSS distribution check. */
struct MssCheckConfig
{
    uint64_t seed = 2026;

    /** Seeded generations per path (spec and incremental). */
    size_t samples = 4000;

    /** Significance level of the chi-square verdicts. */
    double alpha = 1.0e-3;

    /** LLM decoding temperature. */
    float temperature = 0.9f;

    /** SSMs in the speculation pool (merge-based trees when > 1). */
    size_t ssmCount = 2;
};

/** Outcome of the MSS distribution check. */
struct MssCheckResult
{
    bool ok = true;
    std::string detail;

    /** Spec empirical vs. exact LLM law (goodness of fit). */
    double chiSquare = 0.0;
    double critical = 0.0;
    size_t df = 0;

    /** Spec empirical vs. incremental empirical (homogeneity). */
    double chiSquareTwoSample = 0.0;
    double criticalTwoSample = 0.0;
    size_t dfTwoSample = 0;

    /** Total variation between spec empirical and the exact law. */
    double tvd = 0.0;
};

/**
 * Multi-step speculative sampling check: fix a prefix, generate the
 * next token via the full speculative engine under `samples`
 * distinct request seeds, and test the empirical distribution
 * against (a) the exact LLM decoding distribution at the prefix and
 * (b) the empirical distribution of the incremental path.
 */
MssCheckResult runMssDistributionCheck(const MssCheckConfig &cfg);

} // namespace verify
} // namespace specinfer

#endif // SPECINFER_VERIFY_DIFF_HARNESS_H
