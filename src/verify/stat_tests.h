/**
 * @file
 * Small statistics toolkit for the differential correctness
 * harness: total variation distance and chi-square goodness-of-fit
 * / homogeneity statistics over token counts, with deterministic
 * critical values so CI verdicts never depend on ambient state.
 */

#ifndef SPECINFER_VERIFY_STAT_TESTS_H
#define SPECINFER_VERIFY_STAT_TESTS_H

#include <cstddef>
#include <vector>

namespace specinfer {
namespace verify {

/** Total variation distance between two probability vectors. */
double totalVariation(const std::vector<double> &a,
                      const std::vector<double> &b);

/** Standard normal quantile (Acklam's rational approximation). */
double normalQuantile(double p);

/**
 * Upper critical value of the chi-square distribution with `df`
 * degrees of freedom at significance `alpha` (Wilson-Hilferty
 * approximation; exact enough for the df range the harness uses).
 */
double chiSquareCritical(size_t df, double alpha);

/** A chi-square statistic with its degrees of freedom. */
struct ChiSquare
{
    double stat = 0.0;
    size_t df = 0;
};

/**
 * One-sample chi-square of observed counts against expected
 * probabilities. Bins whose expected count falls below
 * `min_expected` are pooled into one bin (standard validity rule);
 * observed mass on zero-probability bins makes the statistic
 * effectively infinite.
 */
ChiSquare chiSquareGoodnessOfFit(const std::vector<size_t> &counts,
                                 const std::vector<double> &probs,
                                 double min_expected = 5.0);

/**
 * Two-sample chi-square test of homogeneity between two count
 * vectors over the same bins (2 x K contingency table), pooling
 * bins whose combined count is below `min_expected`.
 */
ChiSquare chiSquareTwoSample(const std::vector<size_t> &a,
                             const std::vector<size_t> &b,
                             double min_expected = 5.0);

} // namespace verify
} // namespace specinfer

#endif // SPECINFER_VERIFY_STAT_TESTS_H
