/**
 * @file
 * specinferd_supervisor — keep a specinferd alive across crashes.
 *
 * Fork/execs the daemon and babysits it:
 *
 *  - An abnormal child exit (signal, nonzero status, injected
 *    --crash-after) is restarted after a seeded-jitter exponential
 *    backoff; the restarted daemon recovers from its journal and
 *    resumed clients never lose a stream.
 *  - A *crash loop* — too many abnormal exits inside a sliding
 *    window — means restarting cannot help (bad config, corrupt
 *    state); the supervisor gives up with the typed exit code 9.
 *  - A *wedge* — the child is alive but its board heartbeat stopped
 *    advancing past --heartbeat-stall-ms — is broken with SIGKILL
 *    and handled like a crash; recovery replays the journal.
 *  - SIGTERM/SIGINT are forwarded to the child for a graceful drain
 *    and the supervisor exits with the child's status.
 *
 * All restart/give-up decisions live in util::SupervisorPolicy so
 * tests replay the schedules deterministically; this binary is only
 * the process plumbing.
 *
 * Usage:
 *   specinferd_supervisor [--daemon PATH] [--dir DIR]
 *       [--backoff-base-ms 100] [--backoff-cap-ms 10000]
 *       [--stable-uptime-ms 10000]
 *       [--crash-loop-crashes 5] [--crash-loop-window-ms 60000]
 *       [--seed N] [--heartbeat-stall-ms 0]  (0 = no wedge watch)
 *       [--poll-ms 10] [--metrics-out FILE]
 *       -- <daemon flags...>
 *
 * Everything after `--` is passed to the daemon verbatim. The
 * supervisor publishes supervisor_* metrics (restarts, crashes,
 * wedge kills, give-ups) to --metrics-out after every event, so a
 * smoke test can assert `supervisor_restarts` even after the
 * supervisor exits.
 *
 * Exit codes: the drained child's own status after SIGTERM, 9 on a
 * crash-loop give-up, 1 on usage/spawn errors.
 */

#include "cli_common.h"

#include <csignal>
#include <cstring>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "ipc/channel.h"
#include "ipc/shm.h"
#include "util/supervisor.h"

namespace {

volatile std::sig_atomic_t g_term = 0;

void
onTermSignal(int)
{
    g_term = 1;
}

uint64_t
nowMillis()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace specinfer;

    // Split at the literal `--`: our flags before, the daemon's
    // command line after.
    int sep = argc;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--") == 0) {
            sep = i;
            break;
        }
    util::Flags flags(sep, argv);
    flags.allowOnly({"daemon", "dir", "backoff-base-ms",
                     "backoff-cap-ms", "stable-uptime-ms",
                     "crash-loop-crashes", "crash-loop-window-ms",
                     "seed", "heartbeat-stall-ms", "poll-ms",
                     "metrics-out"});

    const std::string daemon_path =
        flags.get("daemon", "./specinferd");
    const std::string ipc_dir = flags.get("dir", "");
    const uint64_t hb_stall_ms = static_cast<uint64_t>(
        flags.getInt("heartbeat-stall-ms", 0));
    const auto poll_sleep = std::chrono::milliseconds(
        static_cast<long>(flags.getInt("poll-ms", 10)));
    const std::string metrics_out = flags.get("metrics-out", "");

    util::SupervisorConfig pcfg;
    pcfg.backoffBaseMillis = static_cast<uint64_t>(
        flags.getInt("backoff-base-ms", 100));
    pcfg.backoffCapMillis = static_cast<uint64_t>(
        flags.getInt("backoff-cap-ms", 10000));
    pcfg.stableUptimeMillis = static_cast<uint64_t>(
        flags.getInt("stable-uptime-ms", 10000));
    pcfg.crashLoopCrashes = static_cast<size_t>(
        flags.getInt("crash-loop-crashes", 5));
    pcfg.crashLoopWindowMillis = static_cast<uint64_t>(
        flags.getInt("crash-loop-window-ms", 60000));
    if (flags.has("seed"))
        pcfg.jitterSeed =
            static_cast<uint64_t>(flags.getInt("seed", 0));
    util::SupervisorPolicy policy(pcfg);

    // Child argv: daemon path + everything after `--`.
    std::vector<char *> child_argv;
    child_argv.push_back(const_cast<char *>(daemon_path.c_str()));
    for (int i = sep + 1; i < argc; ++i)
        child_argv.push_back(argv[i]);
    child_argv.push_back(nullptr);

    // Always-on context (cheap): the counters drive the log lines
    // even when --metrics-out is absent and nothing is exported.
    auto obs_ctx = std::make_unique<obs::ObsContext>(
        &obs::SteadyClock::instance(), /*tracing_enabled=*/false);
    auto counter = [&](const char *name) {
        return obs_ctx->metrics().counter(name);
    };
    for (const char *name :
         {"supervisor_restarts", "supervisor_crashes",
          "supervisor_wedge_kills", "supervisor_giveups"})
        counter(name)->inc(0);
    auto publish = [&]() {
        if (!metrics_out.empty())
            tools::writeObsOutputs(obs_ctx.get(), metrics_out, "");
    };
    publish();

    std::signal(SIGTERM, onTermSignal);
    std::signal(SIGINT, onTermSignal);

    for (;;) {
        const pid_t child = ::fork();
        if (child < 0) {
            std::perror("specinferd_supervisor: fork");
            return 1;
        }
        if (child == 0) {
            ::execvp(daemon_path.c_str(), child_argv.data());
            std::perror("specinferd_supervisor: exec");
            std::_Exit(127);
        }
        policy.onChildStart(nowMillis());
        std::printf("supervisor: launched %s as pid %d\n",
                    daemon_path.c_str(),
                    static_cast<int>(child));
        std::fflush(stdout);

        // Watch the child: exit, SIGTERM forward, wedge detection.
        ipc::Board board;
        uint64_t last_hb = 0;
        uint64_t last_hb_change_ms = nowMillis();
        bool wedge_killed = false;
        int status = 0;
        for (;;) {
            const pid_t r = ::waitpid(child, &status, WNOHANG);
            if (r == child)
                break;
            if (g_term != 0) {
                // Graceful drain: forward and wait for the child to
                // finish streaming + unlink its segments.
                ::kill(child, SIGTERM);
                ::waitpid(child, &status, 0);
                publish();
                std::printf("supervisor: drained after SIGTERM\n");
                return WIFEXITED(status) ? WEXITSTATUS(status) : 0;
            }
            if (hb_stall_ms > 0) {
                if (!board.valid())
                    (void)board.open(ipc_dir.empty()
                                         ? ipc::defaultIpcDir()
                                         : ipc_dir);
                if (board.valid()) {
                    const uint64_t hb =
                        board.shared()->heartbeat.load(
                            std::memory_order_acquire);
                    const uint64_t now = nowMillis();
                    if (hb != last_hb) {
                        last_hb = hb;
                        last_hb_change_ms = now;
                    } else if (now - last_hb_change_ms >
                               hb_stall_ms) {
                        // Wedged: alive but not ticking. No
                        // in-process watchdog can fire (the loop
                        // never returns), so break the process and
                        // let journal recovery take over.
                        std::printf("supervisor: heartbeat stalled "
                                    "%llu ms; killing wedged pid "
                                    "%d\n",
                                    static_cast<unsigned long long>(
                                        now - last_hb_change_ms),
                                    static_cast<int>(child));
                        std::fflush(stdout);
                        ::kill(child, SIGKILL);
                        ::waitpid(child, &status, 0);
                        counter("supervisor_wedge_kills")->inc();
                        wedge_killed = true;
                        break;
                    }
                }
            }
            std::this_thread::sleep_for(poll_sleep);
        }

        if (!wedge_killed && WIFEXITED(status) &&
            WEXITSTATUS(status) == 0) {
            publish();
            std::printf("supervisor: daemon exited cleanly\n");
            return 0;
        }

        counter("supervisor_crashes")->inc();
        const util::SupervisorPolicy::Decision decision =
            policy.onChildExit(nowMillis());
        if (decision.action ==
            util::SupervisorPolicy::Action::GiveUp) {
            counter("supervisor_giveups")->inc();
            publish();
            std::fprintf(stderr,
                         "supervisor: crash loop (%zu crashes in "
                         "%llu ms window); giving up\n",
                         policy.config().crashLoopCrashes,
                         static_cast<unsigned long long>(
                             policy.config().crashLoopWindowMillis));
            return 9;
        }
        counter("supervisor_restarts")->inc();
        publish();
        std::printf("supervisor: child died (%s %d); restart #%llu "
                    "in %llu ms\n",
                    WIFSIGNALED(status) ? "signal" : "status",
                    WIFSIGNALED(status) ? WTERMSIG(status)
                                        : WEXITSTATUS(status),
                    static_cast<unsigned long long>(
                        policy.restartsGranted()),
                    static_cast<unsigned long long>(
                        decision.delayMillis));
        std::fflush(stdout);
        // Interruptible backoff sleep: a SIGTERM during the wait
        // still exits promptly instead of spawning one more child.
        const uint64_t wake = nowMillis() + decision.delayMillis;
        while (g_term == 0 && nowMillis() < wake)
            std::this_thread::sleep_for(poll_sleep);
        if (g_term != 0) {
            publish();
            std::printf("supervisor: SIGTERM during backoff; "
                        "exiting\n");
            return 0;
        }
    }
}
