/**
 * @file
 * specinferd — the crash-isolated serving daemon.
 *
 * Owns one speculative engine + RequestManager and serves any
 * number of client processes over per-client shared-memory ring
 * pairs (see src/ipc/). Clients are held to heartbeat leases; a
 * client that dies or hangs is reaped and its in-flight requests
 * cancelled, without disturbing anyone else.
 *
 * Usage:
 *   specinferd [--llm llama-7b-sim] [--ssm-layers 2]
 *              [--ssm-precision fp32|int8] [--tp 1]
 *              [--expansion 1,1,3,1,1,1,1,1] [--seed 1]
 *              [--max-tokens 64] [--temperature 0] [--batch 4]
 *              [--dir DIR]            IPC dir ($SPECINFER_IPC_DIR,
 *                                     then /dev/shm)
 *              [--lease-ticks 64] [--scan-every 4]
 *              [--tick-micros 1000]   wall-clock tick cadence
 *              [--max-ticks 0]        stop after N ticks (CI; 0 =
 *                                     run until signalled)
 *              [--journal PATH]       write-ahead journal (crash
 *                                     recovery; snapshot at .snap)
 *              [--journal-fsync]      fdatasync the journal at
 *                                     iteration/snapshot boundaries
 *                                     (power-loss durability)
 *              [--record PATH]        request-stream recording
 *                                     (diffcheck --replay-record)
 *              [--class-buckets i,s,b] per-class token-bucket
 *                                     capacities (0 = unmetered)
 *              [--class-refill i,s,b] bucket refill periods
 *                                     (iterations per token)
 *              [--wall-deadline-ms N] default wall-clock deadline
 *              [--watchdog-budget-ms N] per-iteration stall budget
 *              [--stall-degrade N]    iterations speculation stays
 *                                     off after a stall
 *              [--crash-after N]      simulate a crash after N live
 *                                     iterations (supervisor smoke)
 *              [--metrics-out F] [--trace-out F] [--verbose]
 *
 * SIGTERM/SIGINT triggers a graceful drain: admission stops
 * (submits come back Rejected(Draining)), in-flight requests finish
 * and stream out, every segment is unlinked, and the process exits
 * 0. kill -9 is the crash path: segments and journal survive, and
 * the next specinferd over the same --dir/--journal recovers and
 * resumes every stream.
 */

#include "cli_common.h"

#include <chrono>
#include <csignal>
#include <thread>

#include "ipc/daemon.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onStopSignal(int)
{
    // Drain must run on the main loop, not in signal context; the
    // handler only raises the flag (second delivery exits hard so
    // a wedged drain can still be killed politely).
    if (g_stop != 0)
        std::_Exit(130);
    g_stop = 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace specinfer;
    util::Flags flags(argc, argv);
    flags.allowOnly({"llm", "ssm-layers", "ssm-precision", "tp",
                     "expansion", "seed",
                     "max-tokens", "temperature", "batch", "dir",
                     "lease-ticks", "scan-every", "tick-micros",
                     "max-ticks", "journal", "snapshot-every",
                     "journal-fsync", "record",
                     "class-buckets", "class-refill",
                     "wall-deadline-ms", "watchdog-budget-ms",
                     "stall-degrade", "crash-after",
                     "metrics-out", "trace-out", "verbose"});

    const std::string llm_name = flags.get("llm", "llama-7b-sim");
    const size_t ssm_layers =
        static_cast<size_t>(flags.getInt("ssm-layers", 2));
    const std::string expansion_text =
        flags.get("expansion", "1,1,3,1,1,1,1,1");
    const size_t max_tokens =
        static_cast<size_t>(flags.getInt("max-tokens", 64));
    const float temperature =
        static_cast<float>(flags.getDouble("temperature", 0.0));
    const uint64_t seed =
        static_cast<uint64_t>(flags.getInt("seed", 1));
    const bool verbose = flags.getBool("verbose");
    const std::string metrics_out = flags.get("metrics-out", "");
    const std::string trace_out = flags.get("trace-out", "");

    std::unique_ptr<obs::ObsContext> obs_ctx =
        tools::makeObsFromFlags(metrics_out, trace_out);

    // --tp shards the serving models across simulated tensor-
    // parallel ranks (bit-identical tokens at every degree); the
    // degree is persisted in snapshots and recording headers so
    // recovery and replay re-run the same execution shape.
    const size_t tp_degree =
        static_cast<size_t>(flags.getInt("tp", 1));
    model::ModelConfig llm_cfg = model::llmPreset(llm_name);
    llm_cfg.tensorParallel = tp_degree;
    model::Transformer llm = model::makeLlm(llm_cfg);
    const model::Precision ssm_precision = model::parsePrecision(
        flags.get("ssm-precision", "fp32"));
    model::Transformer ssm =
        ssm_precision == model::Precision::Int8
            ? model::makeInt8Ssm(llm, ssm_layers)
            : model::makeEarlyExitSsm(llm, ssm_layers);

    core::EngineConfig cfg =
        temperature > 0.0f
            ? core::EngineConfig::stochasticDefault(temperature)
            : core::EngineConfig::greedyDefault();
    cfg.spec.expansion = tools::parseExpansion(expansion_text);
    cfg.maxNewTokens = max_tokens;
    cfg.seed = seed;
    std::vector<const model::Transformer *> ssms;
    if (!cfg.spec.expansion.widths.empty())
        ssms.push_back(&ssm);
    core::SpecEngine engine(&llm, ssms, cfg);

    runtime::ServingConfig serving;
    serving.maxBatchSize =
        static_cast<size_t>(flags.getInt("batch", 4));
    serving.ssmPrecision = static_cast<uint8_t>(ssm_precision);
    serving.tpDegree = static_cast<uint8_t>(tp_degree);
    serving.obs = obs_ctx.get();
    serving.journalFsync = flags.getBool("journal-fsync");
    serving.defaultWallDeadlineNanos =
        static_cast<uint64_t>(flags.getInt("wall-deadline-ms", 0)) *
        1000000ULL;
    {
        // "i,s,b" per-class bucket capacities / refill periods.
        unsigned long long a = 0, b = 0, c = 0;
        const std::string caps = flags.get("class-buckets", "");
        if (!caps.empty() &&
            std::sscanf(caps.c_str(), "%llu,%llu,%llu", &a, &b,
                        &c) == 3) {
            serving.classBucketCapacity[0] = static_cast<size_t>(a);
            serving.classBucketCapacity[1] = static_cast<size_t>(b);
            serving.classBucketCapacity[2] = static_cast<size_t>(c);
        }
        const std::string refill = flags.get("class-refill", "");
        if (!refill.empty() &&
            std::sscanf(refill.c_str(), "%llu,%llu,%llu", &a, &b,
                        &c) == 3) {
            serving.classRefillEveryIterations[0] =
                static_cast<size_t>(a);
            serving.classRefillEveryIterations[1] =
                static_cast<size_t>(b);
            serving.classRefillEveryIterations[2] =
                static_cast<size_t>(c);
        }
    }

    ipc::DaemonConfig dcfg;
    dcfg.dir = flags.get("dir", "");
    dcfg.leaseTicks =
        static_cast<uint64_t>(flags.getInt("lease-ticks", 64));
    dcfg.scanEvery =
        static_cast<uint64_t>(flags.getInt("scan-every", 4));
    dcfg.journalPath = flags.get("journal", "");
    dcfg.snapshotEvery =
        static_cast<size_t>(flags.getInt("snapshot-every", 64));
    dcfg.recordPath = flags.get("record", "");
    dcfg.recordHeader.llm = llm_name;
    dcfg.recordHeader.ssmLayers = ssm_layers;
    dcfg.recordHeader.expansion =
        cfg.spec.expansion.toString();
    dcfg.recordHeader.seed = seed;
    dcfg.recordHeader.engineMaxNewTokens = max_tokens;
    dcfg.recordHeader.temperature =
        static_cast<double>(temperature);
    dcfg.recordHeader.ssmPrecision =
        static_cast<uint8_t>(ssm_precision);
    dcfg.recordHeader.tpDegree = static_cast<uint8_t>(tp_degree);
    dcfg.obs = obs_ctx.get();
    dcfg.watchdogBudgetNanos =
        static_cast<uint64_t>(
            flags.getInt("watchdog-budget-ms", 0)) *
        1000000ULL;
    dcfg.stallDegradeIterations =
        static_cast<size_t>(flags.getInt("stall-degrade", 64));
    dcfg.crashAfterIterations =
        static_cast<uint64_t>(flags.getInt("crash-after", 0));

    ipc::Daemon daemon(&engine, serving, dcfg);
    if (!daemon.start()) {
        std::fprintf(stderr,
                     "specinferd: cannot start (dir '%s')\n",
                     daemon.dir().c_str());
        return 1;
    }
    std::printf("specinferd: epoch %llu serving in %s "
                "(lease %llu ticks%s%s)\n",
                static_cast<unsigned long long>(daemon.epoch()),
                daemon.dir().c_str(),
                static_cast<unsigned long long>(dcfg.leaseTicks),
                dcfg.journalPath.empty() ? "" : ", journaled",
                dcfg.recordPath.empty() ? "" : ", recorded");
    std::fflush(stdout);

    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);

    const auto tick_sleep = std::chrono::microseconds(
        static_cast<long>(flags.getInt("tick-micros", 1000)));
    const uint64_t max_ticks =
        static_cast<uint64_t>(flags.getInt("max-ticks", 0));

    while (g_stop == 0 &&
           (max_ticks == 0 || daemon.ticks() < max_ticks)) {
        daemon.tick();
        if (tick_sleep.count() > 0)
            std::this_thread::sleep_for(tick_sleep);
    }

    std::printf("specinferd: draining (%zu clients, %zu requests "
                "in flight)\n",
                daemon.clientCount(),
                daemon.manager().pendingCount() +
                    daemon.manager().activeCount());
    daemon.drain();
    if (verbose)
        std::printf("specinferd: served %zu requests over %llu "
                    "ticks, %llu reaps\n",
                    daemon.manager().stats().requestsFinished,
                    static_cast<unsigned long long>(daemon.ticks()),
                    static_cast<unsigned long long>(
                        daemon.reapCount()));
    tools::writeObsOutputs(obs_ctx.get(), metrics_out, trace_out);
    return 0;
}
