/**
 * @file
 * obs_check — validate observability artifacts.
 *
 * Usage:
 *   obs_check [--metrics metrics.prom] [--trace trace.json]
 *             [--require-metric name]...
 *
 * --metrics parses a Prometheus text-exposition file (format 0.0.4)
 * and fails on any malformed line; --trace validates a Chrome
 * trace_event JSON file (well-formed JSON, traceEvents array, per-
 * event schema). --require-metric (repeatable via a comma-separated
 * list) additionally fails unless a sample with that metric name is
 * present — CI uses this to pin the serving metric catalog.
 *
 * Exit status: 0 = all artifacts valid, 1 = validation failure.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "util/flags.h"

namespace {

using namespace specinfer;

/** Base metric name of a sample ("_bucket"/"_sum"/"_count"
 *  suffixes strip to the histogram name). */
std::string
baseName(const std::string &name)
{
    for (const char *suffix : {"_bucket", "_sum", "_count"}) {
        const std::string s(suffix);
        if (name.size() > s.size() &&
            name.compare(name.size() - s.size(), s.size(), s) == 0)
            return name.substr(0, name.size() - s.size());
    }
    return name;
}

bool
checkMetrics(const std::string &path,
             const std::vector<std::string> &required)
{
    std::ifstream in(path);
    if (!in.good()) {
        std::fprintf(stderr, "obs_check: cannot read metrics '%s'\n",
                     path.c_str());
        return false;
    }
    std::string error;
    std::vector<obs::PrometheusSample> samples =
        obs::parsePrometheus(in, &error);
    if (!error.empty()) {
        std::fprintf(stderr, "obs_check: %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    bool ok = true;
    for (const std::string &want : required) {
        bool found = false;
        for (const obs::PrometheusSample &s : samples)
            if (s.name == want || baseName(s.name) == want) {
                found = true;
                break;
            }
        if (!found) {
            std::fprintf(stderr,
                         "obs_check: %s: required metric '%s' "
                         "missing\n",
                         path.c_str(), want.c_str());
            ok = false;
        }
    }
    if (ok)
        std::printf("obs_check: %s: %zu samples OK\n", path.c_str(),
                    samples.size());
    return ok;
}

bool
checkTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in.good()) {
        std::fprintf(stderr, "obs_check: cannot read trace '%s'\n",
                     path.c_str());
        return false;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::string error;
    size_t events = 0;
    if (!obs::validateChromeTrace(text, &error, &events)) {
        std::fprintf(stderr, "obs_check: %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    std::printf("obs_check: %s: %zu events OK\n", path.c_str(),
                events);
    return true;
}

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        if (comma > pos)
            out.push_back(text.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    util::Flags flags(argc, argv);
    flags.allowOnly({"metrics", "trace", "require-metric"});
    const std::string metrics = flags.get("metrics", "");
    const std::string trace = flags.get("trace", "");
    if (metrics.empty() && trace.empty()) {
        std::fprintf(stderr,
                     "usage: obs_check [--metrics FILE] "
                     "[--trace FILE] [--require-metric a,b,...]\n");
        return 1;
    }
    bool ok = true;
    if (!metrics.empty())
        ok = checkMetrics(metrics, splitCommas(flags.get(
                                       "require-metric", ""))) &&
             ok;
    if (!trace.empty())
        ok = checkTrace(trace) && ok;
    return ok ? 0 : 1;
}
