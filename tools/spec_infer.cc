/**
 * @file
 * spec_infer — serve prompts with tree-based speculative inference
 * and verification, mirroring the paper artifact's program of the
 * same name.
 *
 * Usage:
 *   spec_infer [--llm llama-7b-sim] [--ssm-layers 2]
 *              [--ssm-precision fp32|int8] [--tp 1]
 *              [--dataset Alpaca] [--num-prompts 4]
 *              [--max-tokens 64] [--temperature 0]
 *              [--expansion 1,1,3,1,1,1,1,1] [--seed 1] [--verbose]
 *              [--batch 4] [--journal serve.wal]
 *              [--snapshot-every 32] [--crash-after N] [--recover]
 *              [--metrics-out metrics.prom] [--trace-out trace.json]
 *
 * Observability: --metrics-out writes a Prometheus text-exposition
 * snapshot of every counter/gauge/histogram at exit; --trace-out
 * writes a Chrome trace_event JSON (load in Perfetto/about:tracing —
 * one swimlane per request). Neither flag = zero instrumentation
 * overhead and bit-identical outputs.
 *
 * temperature 0 = greedy decoding (lossless vs incremental);
 * temperature > 0 = stochastic decoding via multi-step speculative
 * sampling.
 *
 * Crash safety: with --journal the prompts are served through the
 * continuous-batching RequestManager with a write-ahead token
 * journal at the given path and a state snapshot at
 * `<journal>.snap` refreshed every --snapshot-every iterations.
 * --crash-after N kills the process mid-serve after N iterations
 * (simulating a crash); a subsequent run with --recover rebuilds
 * the scheduler from snapshot + journal tail and finishes the
 * interrupted requests — with outputs token-identical to an
 * uninterrupted run.
 */

#include "cli_common.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "runtime/journal.h"
#include "runtime/request_manager.h"
#include "util/logging.h"

namespace {

using namespace specinfer;

/** Serve through the journaled RequestManager (--journal mode). */
int
serveJournaled(core::SpecEngine &engine,
               const workload::PromptDataset &dataset,
               size_t num_prompts, size_t batch,
               model::Precision ssm_precision, size_t tp_degree,
               const std::string &journal_path, size_t snap_every,
               int64_t crash_after, bool recover_mode,
               bool journal_fsync, bool verbose)
{
    const std::string snap_path = journal_path + ".snap";
    runtime::ServingConfig scfg;
    scfg.maxBatchSize = batch;
    // Persisted in every snapshot: recovery refuses to resume a run
    // under a different SSM precision or tensor-parallel degree
    // than it crashed with.
    scfg.ssmPrecision = static_cast<uint8_t>(ssm_precision);
    scfg.tpDegree = static_cast<uint8_t>(tp_degree);
    scfg.journalFsync = journal_fsync;
    runtime::RequestManager manager(&engine, scfg);

    size_t next_prompt = 0;
    if (recover_mode) {
        // Rebuild from the persisted bytes: snapshot (if any) plus
        // the journal tail, tolerating a torn final record.
        std::stringstream journal_in;
        {
            std::ifstream in(journal_path, std::ios::binary);
            SPECINFER_CHECK(in.good(), "cannot read journal '"
                                           << journal_path << "'");
            journal_in << in.rdbuf();
        }
        std::ifstream snap_in(snap_path, std::ios::binary);
        uint64_t valid = manager.recover(
            snap_in.good() ? &snap_in : nullptr, &journal_in);
        std::printf("recover: %llu valid journal bytes, "
                    "%zu finished, %zu active, %zu pending at "
                    "iteration %zu\n",
                    static_cast<unsigned long long>(valid),
                    manager.finished().size(),
                    manager.activeCount(), manager.pendingCount(),
                    static_cast<size_t>(manager.stats().iterations));
        // Every submitted prompt is journaled; only the tail of the
        // dataset never reached submit() before the crash.
        next_prompt = manager.finished().size() +
                      manager.activeCount() +
                      manager.pendingCount();
    }

    // Start a fresh journal epoch: snapshot the recovered (or
    // empty) state, then truncate the journal and append from zero.
    std::ofstream journal_out(journal_path,
                              std::ios::binary | std::ios::trunc);
    SPECINFER_CHECK(journal_out.good(),
                    "cannot write journal '" << journal_path << "'");
    runtime::JournalWriter journal(journal_out);
    // Power-loss durability (opt-in): a second descriptor on the
    // journal file; appends flush the stream, sync() fdatasyncs it
    // at iteration and snapshot boundaries.
    int sync_fd = -1;
    if (journal_fsync) {
        sync_fd = ::open(journal_path.c_str(), O_WRONLY);
        if (sync_fd >= 0)
            journal.setSyncFd(sync_fd);
    }
    manager.attachJournal(&journal);
    // An operator interrupt mid-serve still leaves a recoverable
    // journal prefix on disk (satellite of the daemon work: every
    // serving entry point flushes state on SIGINT/SIGTERM).
    tools::setSignalFlushHook([&journal_out]() {
        journal_out.flush();
    });
    auto snapshot = [&]() {
        std::ofstream snap_out(snap_path,
                               std::ios::binary | std::ios::trunc);
        manager.writeSnapshot(snap_out);
        journal_out.flush();
        journal.sync(); // no-op without --journal-fsync
    };
    snapshot();

    for (size_t i = next_prompt; i < num_prompts; ++i)
        manager.submit(dataset.prompt(i), 0);

    size_t it = 0;
    while (manager.busy()) {
        manager.runIteration();
        ++it;
        if (it % snap_every == 0)
            snapshot();
        if (crash_after >= 0 &&
            it >= static_cast<size_t>(crash_after) &&
            manager.busy()) {
            // Simulated process death: no snapshot, no drain — the
            // journal's flushed prefix is all a restart gets.
            journal_out.flush();
            std::printf("crash-after: dying at iteration %zu with "
                        "%zu requests in flight (rerun with "
                        "--recover)\n",
                        it,
                        manager.activeCount() +
                            manager.pendingCount());
            std::exit(3);
        }
    }
    snapshot();

    double steps = 0.0, tokens = 0.0;
    for (const runtime::RequestResult &res : manager.finished()) {
        core::GenerationResult gen;
        gen.tokens = res.tokens;
        gen.stats = res.stats;
        tools::printResult(res.id, dataset.prompt(res.id - 1), gen,
                           verbose);
        steps += static_cast<double>(res.stats.llmSteps());
        tokens += static_cast<double>(res.tokens.size());
    }
    std::printf("total: %.0f tokens in %.0f LLM decoding steps "
                "(%.2f tokens/step) over %zu iterations\n",
                tokens, steps, tokens / steps,
                static_cast<size_t>(manager.stats().iterations));
    tools::setSignalFlushHook(nullptr); // journal_out leaves scope
    if (sync_fd >= 0)
        ::close(sync_fd);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace specinfer;
    util::Flags flags(argc, argv);
    flags.allowOnly(tools::commonFlagNames());

    const std::string llm_name = flags.get("llm", "llama-7b-sim");
    const size_t ssm_layers =
        static_cast<size_t>(flags.getInt("ssm-layers", 2));
    const std::string dataset_name = flags.get("dataset", "Alpaca");
    const size_t num_prompts =
        static_cast<size_t>(flags.getInt("num-prompts", 4));
    const size_t max_tokens =
        static_cast<size_t>(flags.getInt("max-tokens", 64));
    const float temperature =
        static_cast<float>(flags.getDouble("temperature", 0.0));
    const bool verbose = flags.getBool("verbose");
    const std::string metrics_out = flags.get("metrics-out", "");
    const std::string trace_out = flags.get("trace-out", "");
    // Installed as the process-global context before any engine or
    // manager is constructed, so every layer resolves it.
    std::unique_ptr<obs::ObsContext> obs_ctx =
        tools::makeObsFromFlags(metrics_out, trace_out);
    tools::installSignalFlush(obs_ctx.get(), metrics_out,
                              trace_out);

    // --tp shards the LLM (and, through the factories, the SSMs)
    // across simulated tensor-parallel ranks; emitted tokens are
    // bit-identical at every degree (DESIGN.md §5j).
    model::ModelConfig llm_cfg = model::llmPreset(llm_name);
    llm_cfg.tensorParallel =
        static_cast<size_t>(flags.getInt("tp", 1));
    model::Transformer llm = model::makeLlm(llm_cfg);
    const model::Precision ssm_precision =
        model::parsePrecision(flags.get("ssm-precision", "fp32"));
    model::Transformer ssm =
        ssm_precision == model::Precision::Int8
            ? model::makeInt8Ssm(llm, ssm_layers)
            : model::makeEarlyExitSsm(llm, ssm_layers);

    core::EngineConfig cfg =
        temperature > 0.0f
            ? core::EngineConfig::stochasticDefault(temperature)
            : core::EngineConfig::greedyDefault();
    cfg.spec.expansion = tools::parseExpansion(
        flags.get("expansion", "1,1,3,1,1,1,1,1"));
    cfg.maxNewTokens = max_tokens;
    cfg.seed = static_cast<uint64_t>(flags.getInt("seed", 1));
    core::SpecEngine engine(&llm, {&ssm}, cfg);

    std::printf("spec_infer: %s + %s, dataset %s, expansion %s, "
                "%s decoding\n",
                llm.config().name.c_str(), ssm.config().name.c_str(),
                dataset_name.c_str(),
                cfg.spec.expansion.toString().c_str(),
                temperature > 0.0f ? "stochastic" : "greedy");

    workload::PromptDataset dataset = workload::PromptDataset::named(
        dataset_name, llm.config().vocabSize);

    const std::string journal_path = flags.get("journal", "");
    if (!journal_path.empty()) {
        int rc = serveJournaled(
            engine, dataset, num_prompts,
            static_cast<size_t>(flags.getInt("batch", 4)),
            ssm_precision, llm_cfg.tensorParallel, journal_path,
            static_cast<size_t>(flags.getInt("snapshot-every", 32)),
            flags.getInt("crash-after", -1),
            flags.getBool("recover"),
            flags.getBool("journal-fsync"), verbose);
        tools::writeObsOutputs(obs_ctx.get(), metrics_out,
                               trace_out);
        return rc;
    }

    double steps = 0.0, tokens = 0.0;
    for (size_t i = 0; i < num_prompts; ++i) {
        std::vector<int> prompt = dataset.prompt(i);
        core::GenerationResult res = engine.generate(prompt, i);
        tools::printResult(i, prompt, res, verbose);
        steps += static_cast<double>(res.stats.llmSteps());
        tokens += static_cast<double>(res.tokens.size());
    }
    std::printf("total: %.0f tokens in %.0f LLM decoding steps "
                "(%.2f tokens/step)\n",
                tokens, steps, tokens / steps);
    tools::writeObsOutputs(obs_ctx.get(), metrics_out, trace_out);
    return 0;
}
