/**
 * @file
 * spec_infer — serve prompts with tree-based speculative inference
 * and verification, mirroring the paper artifact's program of the
 * same name.
 *
 * Usage:
 *   spec_infer [--llm llama-7b-sim] [--ssm-layers 2]
 *              [--dataset Alpaca] [--num-prompts 4]
 *              [--max-tokens 64] [--temperature 0]
 *              [--expansion 1,1,3,1,1,1,1,1] [--seed 1] [--verbose]
 *
 * temperature 0 = greedy decoding (lossless vs incremental);
 * temperature > 0 = stochastic decoding via multi-step speculative
 * sampling.
 */

#include "cli_common.h"

int
main(int argc, char **argv)
{
    using namespace specinfer;
    util::Flags flags(argc, argv);
    flags.allowOnly(tools::commonFlagNames());

    const std::string llm_name = flags.get("llm", "llama-7b-sim");
    const size_t ssm_layers =
        static_cast<size_t>(flags.getInt("ssm-layers", 2));
    const std::string dataset_name = flags.get("dataset", "Alpaca");
    const size_t num_prompts =
        static_cast<size_t>(flags.getInt("num-prompts", 4));
    const size_t max_tokens =
        static_cast<size_t>(flags.getInt("max-tokens", 64));
    const float temperature =
        static_cast<float>(flags.getDouble("temperature", 0.0));
    const bool verbose = flags.getBool("verbose");

    model::Transformer llm =
        model::makeLlm(model::llmPreset(llm_name));
    model::Transformer ssm = model::makeEarlyExitSsm(llm, ssm_layers);

    core::EngineConfig cfg =
        temperature > 0.0f
            ? core::EngineConfig::stochasticDefault(temperature)
            : core::EngineConfig::greedyDefault();
    cfg.spec.expansion = tools::parseExpansion(
        flags.get("expansion", "1,1,3,1,1,1,1,1"));
    cfg.maxNewTokens = max_tokens;
    cfg.seed = static_cast<uint64_t>(flags.getInt("seed", 1));
    core::SpecEngine engine(&llm, {&ssm}, cfg);

    std::printf("spec_infer: %s + %s, dataset %s, expansion %s, "
                "%s decoding\n",
                llm.config().name.c_str(), ssm.config().name.c_str(),
                dataset_name.c_str(),
                cfg.spec.expansion.toString().c_str(),
                temperature > 0.0f ? "stochastic" : "greedy");

    workload::PromptDataset dataset = workload::PromptDataset::named(
        dataset_name, llm.config().vocabSize);
    double steps = 0.0, tokens = 0.0;
    for (size_t i = 0; i < num_prompts; ++i) {
        std::vector<int> prompt = dataset.prompt(i);
        core::GenerationResult res = engine.generate(prompt, i);
        tools::printResult(i, prompt, res, verbose);
        steps += static_cast<double>(res.stats.llmSteps());
        tokens += static_cast<double>(res.tokens.size());
    }
    std::printf("total: %.0f tokens in %.0f LLM decoding steps "
                "(%.2f tokens/step)\n",
                tokens, steps, tokens / steps);
    return 0;
}
