/**
 * @file
 * Shared setup for the command-line tools (mirroring the paper
 * artifact's spec_infer / incr_decoding programs).
 */

#ifndef SPECINFER_TOOLS_CLI_COMMON_H
#define SPECINFER_TOOLS_CLI_COMMON_H

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/spec_engine.h"
#include "model/model_factory.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "util/flags.h"
#include "util/logging.h"
#include "workload/datasets.h"

namespace specinfer {
namespace tools {

/** Flags shared by both CLIs. */
inline const std::vector<std::string> &
commonFlagNames()
{
    static const std::vector<std::string> names = {
        "llm",        "ssm-layers", "ssm-precision", "tp",
        "dataset",    "num-prompts",
        "max-tokens", "temperature", "expansion", "seed",
        "verbose",
        // Crash-safe serving (spec_infer --journal mode).
        "batch",      "journal",    "snapshot-every",
        "crash-after", "recover",   "journal-fsync",
        // Observability exporters.
        "metrics-out", "trace-out",
    };
    return names;
}

/**
 * Install a process-global ObsContext when either exporter path is
 * requested (tracing only when a trace path is). Returns the owning
 * pointer (null = observability off, zero overhead).
 */
inline std::unique_ptr<obs::ObsContext>
makeObsFromFlags(const std::string &metrics_path,
                 const std::string &trace_path)
{
    if (metrics_path.empty() && trace_path.empty())
        return nullptr;
    auto ctx = std::make_unique<obs::ObsContext>(
        &obs::SteadyClock::instance(),
        /*tracing_enabled=*/!trace_path.empty());
    obs::setGlobalObs(ctx.get());
    return ctx;
}

/** Write the Prometheus/Chrome-trace exports requested by flags. */
inline void
writeObsOutputs(obs::ObsContext *ctx,
                const std::string &metrics_path,
                const std::string &trace_path)
{
    if (ctx == nullptr)
        return;
    if (!metrics_path.empty()) {
        std::ofstream out(metrics_path);
        SPECINFER_CHECK(out.good(), "cannot write metrics '"
                                        << metrics_path << "'");
        obs::writePrometheus(ctx->metrics().snapshot(), out);
        std::printf("metrics: wrote %zu instruments to %s\n",
                    ctx->metrics().instrumentCount(),
                    metrics_path.c_str());
    }
    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        SPECINFER_CHECK(out.good(), "cannot write trace '"
                                        << trace_path << "'");
        ctx->tracer().writeChromeTrace(out);
        std::printf("trace: wrote %zu events to %s\n",
                    ctx->tracer().eventCount(), trace_path.c_str());
    }
}

/** Parse the expansion flag "k1,k2,..." into a config. */
inline core::ExpansionConfig
parseExpansion(const std::string &text)
{
    return core::ExpansionConfig::parse(text);
}

// --- Signal-flush handling (SIGINT/SIGTERM) ----------------------
//
// Long-running tools install these so an operator interrupt still
// produces the requested observability artifacts (and, via the
// hook, a flushed journal) instead of a silently truncated run.
// The process exits with the conventional 128+signo code, which is
// how scripts distinguish an interrupted run from a clean one.

namespace detail {
inline volatile std::sig_atomic_t g_signal_fired = 0;
inline obs::ObsContext *g_signal_obs = nullptr;
inline std::string g_signal_metrics;
inline std::string g_signal_trace;

inline std::function<void()> &
signalFlushHook()
{
    static std::function<void()> hook;
    return hook;
}

inline void
onFlushSignal(int signo)
{
    // Re-entrant delivery (second ^C) skips straight to exit.
    if (g_signal_fired != 0)
        std::_Exit(128 + signo);
    g_signal_fired = 1;
    if (signalFlushHook())
        signalFlushHook()();
    writeObsOutputs(g_signal_obs, g_signal_metrics, g_signal_trace);
    std::_Exit(128 + signo);
}
} // namespace detail

/** Install SIGINT/SIGTERM handlers that run the registered flush
 *  hook, write the obs exports, and exit 128+signo. */
inline void
installSignalFlush(obs::ObsContext *ctx,
                   const std::string &metrics_path,
                   const std::string &trace_path)
{
    detail::g_signal_obs = ctx;
    detail::g_signal_metrics = metrics_path;
    detail::g_signal_trace = trace_path;
    std::signal(SIGINT, detail::onFlushSignal);
    std::signal(SIGTERM, detail::onFlushSignal);
}

/** Extra work (journal flush, snapshot) run before the obs export
 *  when a flush signal arrives; replaces any previous hook. */
inline void
setSignalFlushHook(std::function<void()> hook)
{
    detail::signalFlushHook() = std::move(hook);
}

/** Print one request's outcome. */
inline void
printResult(size_t index, const std::vector<int> &prompt,
            const core::GenerationResult &res, bool verbose)
{
    std::printf("[prompt %zu] %zu prompt tokens -> %zu generated in "
                "%zu LLM steps (%.2f tokens/step)\n",
                index, prompt.size(), res.tokens.size(),
                res.stats.llmSteps(),
                res.stats.avgVerifiedPerStep());
    if (verbose) {
        std::printf("  tokens:");
        for (int tok : res.tokens)
            std::printf(" %d", tok);
        std::printf("\n");
    }
}

} // namespace tools
} // namespace specinfer

#endif // SPECINFER_TOOLS_CLI_COMMON_H
