/**
 * @file
 * Shared setup for the command-line tools (mirroring the paper
 * artifact's spec_infer / incr_decoding programs).
 */

#ifndef SPECINFER_TOOLS_CLI_COMMON_H
#define SPECINFER_TOOLS_CLI_COMMON_H

#include <cstdio>
#include <string>
#include <vector>

#include "core/spec_engine.h"
#include "model/model_factory.h"
#include "util/flags.h"
#include "workload/datasets.h"

namespace specinfer {
namespace tools {

/** Flags shared by both CLIs. */
inline const std::vector<std::string> &
commonFlagNames()
{
    static const std::vector<std::string> names = {
        "llm",        "ssm-layers", "dataset",   "num-prompts",
        "max-tokens", "temperature", "expansion", "seed",
        "verbose",
        // Crash-safe serving (spec_infer --journal mode).
        "batch",      "journal",    "snapshot-every",
        "crash-after", "recover",
    };
    return names;
}

/** Parse the expansion flag "k1,k2,..." into a config. */
inline core::ExpansionConfig
parseExpansion(const std::string &text)
{
    core::ExpansionConfig cfg;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        cfg.widths.push_back(static_cast<size_t>(
            std::stoul(text.substr(pos, comma - pos))));
        pos = comma + 1;
    }
    cfg.validate();
    return cfg;
}

/** Print one request's outcome. */
inline void
printResult(size_t index, const std::vector<int> &prompt,
            const core::GenerationResult &res, bool verbose)
{
    std::printf("[prompt %zu] %zu prompt tokens -> %zu generated in "
                "%zu LLM steps (%.2f tokens/step)\n",
                index, prompt.size(), res.tokens.size(),
                res.stats.llmSteps(),
                res.stats.avgVerifiedPerStep());
    if (verbose) {
        std::printf("  tokens:");
        for (int tok : res.tokens)
            std::printf(" %d", tok);
        std::printf("\n");
    }
}

} // namespace tools
} // namespace specinfer

#endif // SPECINFER_TOOLS_CLI_COMMON_H
