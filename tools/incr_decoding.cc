/**
 * @file
 * incr_decoding — serve prompts with plain incremental decoding
 * (paper Algorithm 1), mirroring the paper artifact's program of
 * the same name; the baseline spec_infer is compared against.
 *
 * Usage:
 *   incr_decoding [--llm llama-7b-sim] [--dataset Alpaca]
 *                 [--num-prompts 4] [--max-tokens 64]
 *                 [--temperature 0] [--seed 1] [--verbose]
 */

#include "cli_common.h"

int
main(int argc, char **argv)
{
    using namespace specinfer;
    util::Flags flags(argc, argv);
    flags.allowOnly(tools::commonFlagNames());

    const std::string llm_name = flags.get("llm", "llama-7b-sim");
    const std::string dataset_name = flags.get("dataset", "Alpaca");
    const size_t num_prompts =
        static_cast<size_t>(flags.getInt("num-prompts", 4));
    const size_t max_tokens =
        static_cast<size_t>(flags.getInt("max-tokens", 64));
    const float temperature =
        static_cast<float>(flags.getDouble("temperature", 0.0));
    const bool verbose = flags.getBool("verbose");

    model::Transformer llm =
        model::makeLlm(model::llmPreset(llm_name));
    std::printf("incr_decoding: %s, dataset %s, %s decoding\n",
                llm.config().name.c_str(), dataset_name.c_str(),
                temperature > 0.0f ? "stochastic" : "greedy");

    model::SamplingParams params;
    params.temperature = temperature;
    workload::PromptDataset dataset = workload::PromptDataset::named(
        dataset_name, llm.config().vocabSize);
    util::Rng rng(static_cast<uint64_t>(flags.getInt("seed", 1)));
    double steps = 0.0, tokens = 0.0;
    for (size_t i = 0; i < num_prompts; ++i) {
        std::vector<int> prompt = dataset.prompt(i);
        core::GenerationResult res = core::incrementalGenerate(
            llm, prompt, params, max_tokens, rng);
        tools::printResult(i, prompt, res, verbose);
        steps += static_cast<double>(res.stats.llmSteps());
        tokens += static_cast<double>(res.tokens.size());
    }
    std::printf("total: %.0f tokens in %.0f LLM decoding steps\n",
                tokens, steps);
    return 0;
}
