/**
 * @file
 * Differential correctness checker: runs the spec-vs-incremental
 * oracle (src/verify) over many seeded trials and reports a one-line
 * repro for any failure.
 *
 * Usage:
 *   diffcheck [--trials N] [--fuzz-trials N] [--kv-trials N]
 *             [--recovery-trials N] [--mss-samples N] [--seed S]
 *             [--alpha A]
 *             [--replay SEED --kind greedy|fuzz|kv|recovery]
 *             [--replay-record FILE [--verbose]]
 *
 * Exit status is 0 iff every check passes. On failure the tool
 * prints `diffcheck --replay <seed> --kind <kind>`, which re-runs
 * exactly the failing trial with verbose detail.
 *
 * --replay-record re-drives a specinferd request-stream recording
 * through a fresh engine and checks token-identical reproduction
 * (exact for finished requests, prefix for aborted ones) — the
 * offline oracle for live daemon incidents.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "ipc/replay.h"
#include "util/flags.h"
#include "verify/diff_harness.h"

namespace {

using specinfer::verify::TrialOutcome;

/** Run one family of seeded trials; returns the failure count. */
size_t
runFamily(const char *kind, TrialOutcome (*trial)(uint64_t),
          uint64_t seed0, size_t trials)
{
    size_t failures = 0;
    for (size_t i = 0; i < trials; ++i) {
        const uint64_t seed = seed0 + i;
        TrialOutcome out = trial(seed);
        if (out.ok)
            continue;
        ++failures;
        std::printf("FAIL [%s] %s\n  %s\n  repro: diffcheck "
                    "--replay %llu --kind %s\n",
                    kind, out.configLine.c_str(), out.detail.c_str(),
                    static_cast<unsigned long long>(seed), kind);
    }
    std::printf("%-6s : %zu/%zu trials passed\n", kind,
                trials - failures, trials);
    return failures;
}

specinfer::verify::TrialOutcome
greedyTrialThunk(uint64_t seed)
{
    return specinfer::verify::runGreedyTrial(seed);
}

specinfer::verify::TrialOutcome
recoveryTrialThunk(uint64_t seed)
{
    return specinfer::verify::runRecoveryTrial(seed);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace specinfer;
    util::Flags flags(argc, argv);
    flags.allowOnly({"trials", "fuzz-trials", "kv-trials",
                     "recovery-trials", "mss-samples", "mss-ssms",
                     "seed", "alpha", "replay", "kind",
                     "replay-record", "verbose"});

    const uint64_t seed0 =
        static_cast<uint64_t>(flags.getInt("seed", 1));

    if (flags.has("replay-record")) {
        const std::string path = flags.get("replay-record", "");
        std::ifstream in(path, std::ios::binary);
        if (!in.good()) {
            std::printf("cannot read recording '%s'\n",
                        path.c_str());
            return 2;
        }
        ipc::ReplayResult res = ipc::replayRecording(
            in, std::cout, flags.getBool("verbose"));
        if (!res.error.empty()) {
            std::printf("replay: %s\n", res.error.c_str());
            return 2;
        }
        return res.ok ? 0 : 1;
    }

    if (flags.has("replay")) {
        const uint64_t seed =
            static_cast<uint64_t>(flags.getInt("replay", 0));
        const std::string kind = flags.get("kind", "greedy");
        verify::TrialOutcome out;
        if (kind == "greedy")
            out = verify::runGreedyTrial(seed, /*verbose=*/true);
        else if (kind == "fuzz")
            out = verify::runTreeFuzzTrial(seed);
        else if (kind == "kv")
            out = verify::runKvRoundTripTrial(seed);
        else if (kind == "recovery")
            out = verify::runRecoveryTrial(seed, /*verbose=*/true);
        else {
            std::printf("unknown --kind '%s' "
                        "(greedy|fuzz|kv|recovery)\n",
                        kind.c_str());
            return 2;
        }
        std::printf("%s\n%s: %s\n", out.configLine.c_str(),
                    out.ok ? "PASS" : "FAIL",
                    out.ok ? "trial reproduces cleanly"
                           : out.detail.c_str());
        return out.ok ? 0 : 1;
    }

    const size_t trials =
        static_cast<size_t>(flags.getInt("trials", 200));
    const size_t fuzz_trials =
        static_cast<size_t>(flags.getInt("fuzz-trials", 200));
    const size_t kv_trials =
        static_cast<size_t>(flags.getInt("kv-trials", 50));
    const size_t recovery_trials =
        static_cast<size_t>(flags.getInt("recovery-trials", 100));

    size_t failures = 0;
    failures += runFamily("greedy", greedyTrialThunk, seed0, trials);
    failures += runFamily("fuzz", verify::runTreeFuzzTrial,
                          seed0, fuzz_trials);
    failures += runFamily("kv", verify::runKvRoundTripTrial,
                          seed0, kv_trials);
    failures += runFamily("recovery", recoveryTrialThunk, seed0,
                          recovery_trials);

    verify::MssCheckConfig mss;
    mss.seed = seed0 + 0x515151ULL;
    mss.samples =
        static_cast<size_t>(flags.getInt("mss-samples", 4000));
    mss.alpha = flags.getDouble("alpha", 1.0e-3);
    mss.ssmCount =
        static_cast<size_t>(flags.getInt("mss-ssms", 2));
    if (mss.samples > 0) {
        verify::MssCheckResult res =
            verify::runMssDistributionCheck(mss);
        std::printf("mss    : chi2=%.2f (crit %.2f, df %zu) "
                    "two-sample=%.2f (crit %.2f, df %zu) tvd=%.4f "
                    "-> %s\n",
                    res.chiSquare, res.critical, res.df,
                    res.chiSquareTwoSample, res.criticalTwoSample,
                    res.dfTwoSample, res.tvd,
                    res.ok ? "PASS" : "FAIL");
        if (!res.ok) {
            ++failures;
            std::printf("FAIL [mss] %s\n", res.detail.c_str());
        }
    }

    if (failures > 0) {
        std::printf("diffcheck: %zu check(s) FAILED\n", failures);
        return 1;
    }
    std::printf("diffcheck: all checks passed\n");
    return 0;
}
