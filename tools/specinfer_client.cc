/**
 * @file
 * specinfer_client — drive requests through a running specinferd.
 *
 * Submits dataset prompts over the shared-memory plane, streams the
 * responses, and prints each finished request's tokens in the exact
 * `  tokens: ...` format of `spec_infer --verbose`, so the daemon
 * smoke test can diff a multi-process run against the in-process
 * oracle line-for-line.
 *
 * Usage:
 *   specinfer_client [--dir DIR] [--llm llama-7b-sim]
 *                    [--dataset Alpaca] [--num-prompts 3]
 *                    [--prompt-start 0] [--max-tokens 32]
 *                    [--priority interactive|standard|batch]
 *                    [--poll-micros 500] [--max-polls 400000]
 *                    [--stall-polls 4000]
 *                    [--abandon-after-tokens N] [--verbose]
 *
 * --abandon-after-tokens simulates a crashing client from inside:
 * once N tokens have streamed in, the process abandons its channel
 * (no goodbye, no unlink — kill -9 semantics) and exits 7; the
 * daemon's lease reaper must clean up.
 *
 * An overload rejection is typed so callers can script retries:
 * `rejected: overloaded (retry-after N)` where N is the daemon's
 * class-scaled backoff advice in polls, and the exit code is 8
 * (distinct from other rejections' 2).
 *
 * Exit codes: 0 all finished, 2 a submit was rejected, 4 daemon
 * gone, 5 timed out, 6 corrupt channel, 7 abandoned on purpose,
 * 8 shed by overload control (retry after the advised backoff).
 */

#include "cli_common.h"

#include <chrono>
#include <thread>

#include "ipc/client.h"

int
main(int argc, char **argv)
{
    using namespace specinfer;
    util::Flags flags(argc, argv);
    flags.allowOnly({"dir", "llm", "dataset", "num-prompts",
                     "prompt-start", "max-tokens", "priority",
                     "poll-micros", "max-polls", "stall-polls",
                     "abandon-after-tokens", "verbose"});

    const std::string llm_name = flags.get("llm", "llama-7b-sim");
    const std::string dataset_name = flags.get("dataset", "Alpaca");
    const size_t num_prompts =
        static_cast<size_t>(flags.getInt("num-prompts", 3));
    const size_t prompt_start =
        static_cast<size_t>(flags.getInt("prompt-start", 0));
    const size_t max_tokens =
        static_cast<size_t>(flags.getInt("max-tokens", 32));
    const bool verbose = flags.getBool("verbose");
    const int64_t abandon_after =
        flags.getInt("abandon-after-tokens", -1);
    const auto poll_sleep = std::chrono::microseconds(
        static_cast<long>(flags.getInt("poll-micros", 500)));
    const size_t max_polls =
        static_cast<size_t>(flags.getInt("max-polls", 400000));
    const std::string priority_name =
        flags.get("priority", "standard");
    runtime::Priority priority = runtime::Priority::Standard;
    if (priority_name == "interactive")
        priority = runtime::Priority::Interactive;
    else if (priority_name == "batch")
        priority = runtime::Priority::Batch;
    else if (priority_name != "standard") {
        std::fprintf(stderr,
                     "specinfer_client: unknown --priority '%s' "
                     "(interactive|standard|batch)\n",
                     priority_name.c_str());
        return 1;
    }

    // Prompts only need the model's vocab size, not its weights.
    workload::PromptDataset dataset = workload::PromptDataset::named(
        dataset_name, model::llmPreset(llm_name).vocabSize);

    ipc::ClientConfig ccfg;
    ccfg.dir = flags.get("dir", "");
    ccfg.backoffUnitMicros = 200;
    ccfg.stallPollLimit =
        static_cast<size_t>(flags.getInt("stall-polls", 4000));
    ipc::Client client(ccfg);

    ipc::ClientStatus status = client.connect();
    if (status != ipc::ClientStatus::Pending) {
        std::fprintf(stderr, "specinfer_client: connect: %s\n",
                     ipc::clientStatusName(status));
        return 4;
    }
    status = client.waitConnected(max_polls);
    if (status != ipc::ClientStatus::Ok) {
        std::fprintf(stderr, "specinfer_client: handshake: %s\n",
                     ipc::clientStatusName(status));
        return status == ipc::ClientStatus::Timeout ? 5 : 4;
    }

    std::vector<uint64_t> tags;
    for (size_t i = 0; i < num_prompts; ++i)
        tags.push_back(client.submit(
            dataset.prompt(prompt_start + i), max_tokens,
            priority));

    size_t polls = 0;
    bool abandoned = false;
    while (client.inflightCount() > 0 && polls < max_polls) {
        ++polls;
        status = client.poll();
        switch (status) {
          case ipc::ClientStatus::DaemonRestarted:
            if (verbose)
                std::printf("client: daemon restarted (epoch "
                            "%llu); resuming\n",
                            static_cast<unsigned long long>(
                                client.daemonEpoch()));
            break;
          case ipc::ClientStatus::LeaseRevoked:
            if (verbose)
                std::printf("client: lease revoked; "
                            "reconnecting\n");
            client.reconnect();
            break;
          case ipc::ClientStatus::DaemonGone:
            std::fprintf(stderr,
                         "specinfer_client: daemon gone\n");
            return 4;
          case ipc::ClientStatus::Corrupt:
            std::fprintf(stderr,
                         "specinfer_client: corrupt channel\n");
            return 6;
          default:
            break;
        }
        if (abandon_after >= 0 && !abandoned) {
            size_t streamed = 0;
            for (uint64_t tag : tags)
                streamed += client.request(tag)->tokens.size();
            if (streamed >=
                static_cast<size_t>(abandon_after)) {
                client.abandon();
                std::printf("client: abandoning with %zu tokens "
                            "streamed\n",
                            streamed);
                return 7;
            }
        }
        if (poll_sleep.count() > 0)
            std::this_thread::sleep_for(poll_sleep);
    }

    int rc = 0;
    if (client.inflightCount() > 0) {
        std::fprintf(stderr,
                     "specinfer_client: timed out with %zu "
                     "requests unfinished\n",
                     client.inflightCount());
        rc = 5;
    }
    for (size_t i = 0; i < tags.size(); ++i) {
        const ipc::ClientRequest *req = client.request(tags[i]);
        if (req->reject == ipc::WireReject::Overloaded) {
            // Typed shed line: scripts parse the class-scaled
            // backoff advice and retry instead of treating the
            // shed as a hard failure.
            std::printf("[prompt %zu] rejected: overloaded "
                        "(retry-after %llu)\n",
                        prompt_start + i,
                        static_cast<unsigned long long>(
                            client.overloadBackoffPolls()));
            rc = rc == 0 ? 8 : rc;
            continue;
        }
        if (req->reject != ipc::WireReject::None) {
            std::printf("[prompt %zu] rejected: %s\n",
                        prompt_start + i,
                        ipc::wireRejectName(req->reject));
            rc = rc == 0 ? 2 : rc;
            continue;
        }
        if (!req->finished)
            continue;
        std::printf("[prompt %zu] %zu prompt tokens -> %zu "
                    "generated (stop %u)\n",
                    prompt_start + i,
                    dataset.prompt(prompt_start + i).size(),
                    req->tokens.size(),
                    static_cast<unsigned>(req->stopReason));
        std::printf("  tokens:");
        for (int tok : req->tokens)
            std::printf(" %d", tok);
        std::printf("\n");
    }
    client.disconnect();
    return rc;
}
